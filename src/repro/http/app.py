"""The transport-agnostic request router of the HTTP front-end.

:class:`ServingApp` turns one ``(method, path, body-bytes)`` triple
into one ``(status, payload, headers)`` response, with every domain
call delegated to the wrapped session layer — a single-engine
:class:`repro.serving.JOCLService` or a sharded
:class:`repro.serving.JOCLClusterService`; the app itself holds no
engine state and no locks.  Keeping the router free of sockets makes
the whole endpoint surface unit-testable in-process and lets any
transport (the bundled asyncio server, a WSGI shim, a test harness)
reuse it unchanged.

Dispatch discipline:

* request bodies are parsed through the schema-versioned envelopes of
  :mod:`repro.http.envelopes`; malformed JSON, a wrong
  ``schema_version`` or a missing field is a structured 400, never a
  traceback;
* every exception the session layer raises is mapped through
  :func:`repro.http.envelopes.error_response` — the
  :mod:`repro.api.errors` hierarchy onto 4xx/5xx codes, anything
  unexpected onto an opaque 500;
* answers are byte-identical to the in-process path: response payloads
  nest the exact ``to_dict()`` the service's own results produce.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Mapping

from repro.api.errors import CheckpointError, SchemaError
from repro.http.envelopes import (
    CheckpointResponse,
    ErrorResponse,
    HealthResponse,
    IngestRequest,
    IngestResponse,
    ResolveManyRequest,
    ResolveManyResponse,
    ResolveRequest,
    ResolveResponse,
    RollbackRequest,
    RollbackResponse,
    RunJointResponse,
    StatsResponse,
    error_response,
)
from repro.serving.cluster_service import JOCLClusterService
from repro.serving.service import JOCLService

#: ``(status, payload, extra response headers)`` — what every handler
#: returns and every transport serializes.
Response = tuple[int, dict, dict[str, str]]

_NO_HEADERS: dict[str, str] = {}


def _parse_body(body: bytes) -> object:
    """Decode a request body to JSON; empty means an empty mapping."""
    if not body:
        return {}
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SchemaError(f"request body is not valid JSON: {error}") from error


class ServingApp:
    """Route HTTP/JSON requests onto one serving session.

    Parameters
    ----------
    service:
        The session layer to serve — a :class:`JOCLService` or a
        :class:`JOCLClusterService`.  The app adds no locking of its
        own: the session layer already owns the read/write discipline
        and the micro-batching window.
    server_gauges:
        Optional zero-argument callable returning the transport's
        telemetry mapping (in-flight requests, draining flag, ...);
        the bundled :class:`repro.http.HTTPServingServer` wires its own
        gauges in, and the ``stats``/``healthz`` endpoints surface
        them.

    Example::

        app = ServingApp(JOCLService(engine, store=store))
        status, payload, _ = app.handle(
            "POST", "/v1/resolve",
            json.dumps(ResolveRequest("umd", "entity").to_dict()).encode(),
        )
    """

    def __init__(
        self,
        service: JOCLService | JOCLClusterService,
        server_gauges: Callable[[], Mapping[str, object]] | None = None,
    ) -> None:
        self._service = service
        self._server_gauges = server_gauges
        self._routes: dict[str, tuple[str, Callable[[bytes], Response]]] = {
            "/v1/resolve": ("POST", self._resolve),
            "/v1/resolve_many": ("POST", self._resolve_many),
            "/v1/ingest": ("POST", self._ingest),
            "/v1/run_joint": ("POST", self._run_joint),
            "/v1/checkpoint": ("POST", self._checkpoint),
            "/v1/rollback": ("POST", self._rollback),
            "/v1/stats": ("GET", self._stats),
            "/healthz": ("GET", self._healthz),
        }

    @property
    def service(self) -> JOCLService | JOCLClusterService:
        """The wrapped session layer."""
        return self._service

    @property
    def endpoints(self) -> tuple[tuple[str, str], ...]:
        """The routing table as ``(method, path)`` pairs."""
        return tuple(
            (method, path) for path, (method, _) in self._routes.items()
        )

    def attach_server_gauges(
        self, gauges: Callable[[], Mapping[str, object]]
    ) -> None:
        """Wire the owning transport's telemetry into ``stats``/``healthz``."""
        self._server_gauges = gauges

    def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Serve one request; never raises.

        Unknown paths are structured 404s, a known path with the wrong
        method a 405 with an ``Allow`` header, and any exception out of
        parsing or the session layer the mapped error body.
        """
        route = self._routes.get(path)
        if route is None:
            return self._error(
                ErrorResponse(
                    status=404,
                    code="unknown_endpoint",
                    message=f"no endpoint at {path!r}",
                )
            )
        allowed, handler = route
        if method != allowed:
            status, payload, _ = self._error(
                ErrorResponse(
                    status=405,
                    code="method_not_allowed",
                    message=f"{path} accepts {allowed}, not {method}",
                )
            )
            return status, payload, {"Allow": allowed}
        try:
            return handler(body)
        except BaseException as error:  # noqa: B036 - boundary: never a traceback
            return self._error(error_response(error))

    @staticmethod
    def _error(error: ErrorResponse) -> Response:
        return error.status, error.to_dict(), _NO_HEADERS

    # ------------------------------------------------------------------
    # Endpoint handlers
    # ------------------------------------------------------------------
    def _resolve(self, body: bytes) -> Response:
        request = ResolveRequest.from_dict(_parse_body(body))
        answer = self._service.resolve(request.mention, request.kind)
        return 200, ResolveResponse(result=answer.to_dict()).to_dict(), _NO_HEADERS

    def _resolve_many(self, body: bytes) -> Response:
        request = ResolveManyRequest.from_dict(_parse_body(body))
        answers = self._service.resolve_many(list(request.mentions), request.kind)
        return (
            200,
            ResolveManyResponse(
                results=tuple(answer.to_dict() for answer in answers)
            ).to_dict(),
            _NO_HEADERS,
        )

    def _ingest(self, body: bytes) -> Response:
        request = IngestRequest.from_dict(_parse_body(body))
        outcome = self._service.ingest(list(request.triples))
        if isinstance(outcome, int):
            response = IngestResponse(ingested=outcome)
        else:  # the cluster session returns a routed IngestReport
            response = IngestResponse(
                ingested=outcome.n_triples, report=outcome.to_dict()
            )
        return 200, response.to_dict(), _NO_HEADERS

    def _run_joint(self, body: bytes) -> Response:
        report = self._service.run_joint()
        return (
            200,
            RunJointResponse(report=report.to_dict()).to_dict(),
            _NO_HEADERS,
        )

    def _checkpoint(self, body: bytes) -> Response:
        if isinstance(self._service, JOCLService):
            response = CheckpointResponse(snapshot=self._service.checkpoint())
        else:
            response = CheckpointResponse(manifest=self._service.save())
        return 200, response.to_dict(), _NO_HEADERS

    def _rollback(self, body: bytes) -> Response:
        request = RollbackRequest.from_dict(_parse_body(body))
        if not isinstance(self._service, JOCLService):
            raise CheckpointError(
                "a cluster session has no rollback endpoint: restore a "
                "cluster checkpoint with ShardedEngine.load and start a "
                "fresh service over it"
            )
        snapshot = self._service.rollback(request.snapshot)
        return 200, RollbackResponse(snapshot=snapshot).to_dict(), _NO_HEADERS

    def _serving_sections(self) -> tuple[dict, ...]:
        stats = self._service.serving_stats()
        sections = stats if isinstance(stats, list) else [stats]
        return tuple(dataclasses.asdict(section) for section in sections)

    def _stats(self, body: bytes) -> Response:
        gauges = dict(self._server_gauges()) if self._server_gauges else {}
        response = StatsResponse(
            engine=self._service.stats().to_dict(),
            serving=self._serving_sections(),
            server=gauges,
        )
        return 200, response.to_dict(), _NO_HEADERS

    def _healthz(self, body: bytes) -> Response:
        gauges = dict(self._server_gauges()) if self._server_gauges else {}
        draining = bool(gauges.get("draining", False))
        response = HealthResponse(
            status="draining" if draining else "ok", draining=draining
        )
        return 200, response.to_dict(), _NO_HEADERS
