"""The asyncio HTTP/1.1 transport of the serving front-end.

Pure stdlib: :func:`asyncio.start_server` streams on the network side,
a :class:`concurrent.futures.ThreadPoolExecutor` on the engine side.
The event loop never runs engine code — every request is handed to the
executor, so concurrent arrivals genuinely pile up inside the session
layer's micro-batching queue and the batching window has traffic to
coalesce (the whole point of the front-end: synchronous in-process
callers never produced that contention).

Robustness controls, all configurable through :class:`ServerConfig`:

* **backpressure** — at most ``max_in_flight`` requests execute at
  once; excess arrivals are answered immediately with a structured
  ``429`` carrying a ``Retry-After`` header instead of queueing without
  bound;
* **per-request timeout** — a request that exceeds
  ``request_timeout_s`` is answered with a ``504`` (the worker thread
  finishes in the background; its result is discarded);
* **graceful drain** — :meth:`HTTPServingServer.stop` stops accepting,
  lets every in-flight request finish and be answered (bounded by
  ``drain_timeout_s``), then closes idle connections; requests arriving
  on kept-alive connections during the drain get a structured ``503``.

The loop runs on a dedicated background thread
(:meth:`HTTPServingServer.start` returns once the port is bound), so
tests, examples and the load harness drive a real network server
in-process.  All cross-thread signalling goes through
``call_soon_threadsafe`` and :class:`threading.Event` — the server owns
no locks, and every piece of mutable server state is touched only on
the loop thread.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api.errors import EngineStateError, InvalidRequestError
from repro.http.app import ServingApp
from repro.http.envelopes import ErrorResponse

#: HTTP reason phrases for the statuses the front-end emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServerConfig:
    """Transport knobs of one :class:`HTTPServingServer`."""

    #: Bind address; the default keeps the server loopback-only.
    host: str = "127.0.0.1"
    #: Bind port; 0 lets the OS pick (read it back from
    #: :attr:`HTTPServingServer.port` after :meth:`~HTTPServingServer.start`).
    port: int = 0
    #: Requests executing concurrently before new arrivals get a 429.
    max_in_flight: int = 64
    #: Seconds a single request may run before its caller gets a 504.
    request_timeout_s: float = 30.0
    #: Seconds :meth:`HTTPServingServer.stop` waits for in-flight
    #: requests before closing connections anyway.
    drain_timeout_s: float = 10.0
    #: Cap on request body size; larger bodies get a 413.
    max_body_bytes: int = 8 * 1024 * 1024
    #: Seconds clients are told to back off in 429/503 ``Retry-After``.
    retry_after_s: float = 0.05

    def validated(self) -> ServerConfig:
        """Return self after range-checking every knob."""
        if self.max_in_flight < 1:
            raise InvalidRequestError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.request_timeout_s <= 0:
            raise InvalidRequestError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        if self.max_body_bytes < 1:
            raise InvalidRequestError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        return self


def _discard_result(future: asyncio.Future) -> None:
    """Retrieve a timed-out worker's eventual outcome so it is neither
    delivered nor logged as a never-retrieved exception."""
    if not future.cancelled():
        future.exception()


class _BadRequest(Exception):
    """A connection-level protocol problem; maps to a 4xx + close."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class HTTPServingServer:
    """One HTTP/JSON serving process over a :class:`ServingApp`.

    Example::

        server = HTTPServingServer(ServingApp(service))
        server.start()                      # background loop, port bound
        ...                                 # clients hit server.port
        server.stop()                       # drain in-flight, then close

    Also usable as a context manager (``with HTTPServingServer(app) as
    server:``); the sockets and the worker pool are released on exit.
    """

    def __init__(
        self, app: ServingApp, config: ServerConfig | None = None
    ) -> None:
        self._app = app
        self._config = (config or ServerConfig()).validated()
        app.attach_server_gauges(self.gauges)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._start_error: BaseException | None = None
        self._shutdown: asyncio.Event | None = None
        self._port: int | None = None
        # Loop-thread-only state below: the event loop is the monitor.
        self._in_flight = 0
        self._requests_served = 0
        self._rejected_busy = 0
        self._timed_out = 0
        self._draining = False
        self._connections: set[asyncio.StreamWriter] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.max_in_flight,
            thread_name_prefix="repro-http",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> HTTPServingServer:
        """Bind and serve on a background event-loop thread.

        Returns once the listening socket is bound (so :attr:`port` is
        readable); raises the bind error otherwise.
        """
        if self._thread is not None:
            raise EngineStateError("this server has already been started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-http-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            self._thread.join()
            raise EngineStateError(
                f"HTTP server failed to start: {self._start_error}"
            ) from self._start_error
        return self

    def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close.

        Idempotent; returns after the loop thread exits and the worker
        pool is shut down.
        """
        loop, thread = self._loop, self._thread
        if thread is None or self._stopped.is_set():
            return
        if loop is not None and self._shutdown is not None:
            loop.call_soon_threadsafe(self._shutdown.set)
        thread.join()
        self._stopped.set()
        self._executor.shutdown(wait=True)

    def __enter__(self) -> HTTPServingServer:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._port is None:
            raise EngineStateError("server is not started; call start() first")
        return self._port

    @property
    def host(self) -> str:
        """The configured bind address."""
        return self._config.host

    @property
    def app(self) -> ServingApp:
        """The request router being served."""
        return self._app

    @property
    def config(self) -> ServerConfig:
        """The transport configuration."""
        return self._config

    def gauges(self) -> dict:
        """Transport telemetry for the ``stats``/``healthz`` endpoints.

        Gauges are plain int/bool reads of loop-thread state — racy by
        a request or two when read off-loop, which telemetry tolerates.
        """
        return {
            "in_flight": self._in_flight,
            "max_in_flight": self._config.max_in_flight,
            "requests_served": self._requests_served,
            "rejected_busy": self._rejected_busy,
            "timed_out": self._timed_out,
            "draining": self._draining,
        }

    # ------------------------------------------------------------------
    # Event-loop side
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # pragma: no cover - bind failures
            self._start_error = error
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            host=self._config.host,
            port=self._config.port,
            limit=max(65536, self._config.max_body_bytes + 65536),
        )
        self._port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            self._draining = True
            server.close()
            await self._drain_in_flight()
            for writer in list(self._connections):
                writer.close()
            # Last: on 3.12+ wait_closed() waits for every connection
            # handler, which the writer.close() calls above unblock.
            await server.wait_closed()

    async def _drain_in_flight(self) -> None:
        """Wait (bounded) for executing requests to finish and answer."""
        deadline = (
            asyncio.get_running_loop().time() + self._config.drain_timeout_s
        )
        while self._in_flight and (
            asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.005)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    await self._write_response(
                        writer,
                        error.status,
                        ErrorResponse(
                            status=error.status,
                            code=error.code,
                            message=str(error),
                        ).to_dict(),
                        {},
                        keep_alive=False,
                    )
                    return
                if request is None:  # clean EOF between requests
                    return
                method, path, body, keep_alive = request
                status, payload, headers = await self._dispatch(
                    method, path, body
                )
                keep_alive = keep_alive and not self._draining
                await self._write_response(
                    writer, status, payload, headers, keep_alive=keep_alive
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away mid-exchange; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        config = self._config
        if self._draining:
            error = ErrorResponse(
                status=503,
                code="shutting_down",
                message="server is draining; retry against another replica",
                retry_after_s=config.retry_after_s,
            )
            return error.status, error.to_dict(), self._retry_headers()
        if self._in_flight >= config.max_in_flight:
            self._rejected_busy += 1
            error = ErrorResponse(
                status=429,
                code="overloaded",
                message=(
                    f"{config.max_in_flight} requests already in flight; "
                    f"retry after {config.retry_after_s}s"
                ),
                retry_after_s=config.retry_after_s,
            )
            return error.status, error.to_dict(), self._retry_headers()
        assert self._loop is not None
        self._in_flight += 1
        try:
            future = self._loop.run_in_executor(
                self._executor, self._app.handle, method, path, body
            )
            try:
                status, payload, headers = await asyncio.wait_for(
                    asyncio.shield(future), timeout=config.request_timeout_s
                )
            except asyncio.TimeoutError:
                self._timed_out += 1
                future.add_done_callback(_discard_result)
                error = ErrorResponse(
                    status=504,
                    code="timeout",
                    message=(
                        f"request exceeded the {config.request_timeout_s}s "
                        f"serving deadline"
                    ),
                )
                return error.status, error.to_dict(), {}
            self._requests_served += 1
            return status, payload, headers
        finally:
            self._in_flight -= 1

    def _retry_headers(self) -> dict[str, str]:
        return {"Retry-After": f"{self._config.retry_after_s:.3f}"}

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes, bool] | None:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF.

        Returns ``(method, path, body, keep_alive)``; raises
        :class:`_BadRequest` on protocol violations.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise _BadRequest(
                400, "bad_request", "truncated HTTP request head"
            ) from error
        except asyncio.LimitOverrunError as error:
            raise _BadRequest(
                413, "headers_too_large", "request head exceeds the limit"
            ) from error
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(
                400, "bad_request", f"malformed request line {lines[0]!r}"
            )
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise _BadRequest(
                    400, "bad_request", f"malformed header line {line!r}"
                )
            headers[name.strip().lower()] = value.strip()
        path = target.split("?", 1)[0]
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as error:
            raise _BadRequest(
                400, "bad_request", "malformed Content-Length header"
            ) from error
        if length < 0:
            raise _BadRequest(
                400, "bad_request", "negative Content-Length header"
            )
        if length > self._config.max_body_bytes:
            raise _BadRequest(
                413,
                "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self._config.max_body_bytes}-byte cap",
            )
        body = await reader.readexactly(length) if length else b""
        if version == "HTTP/1.0":
            keep_alive = headers.get("connection", "").lower() == "keep-alive"
        else:
            keep_alive = headers.get("connection", "").lower() != "close"
        return method, path, body, keep_alive

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        headers: dict[str, str],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()
