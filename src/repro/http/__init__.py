"""The HTTP/JSON serving front-end: the network edge of the system.

Everything below this package is in-process; this is where the
reproduction meets a socket.  Three layers, each usable alone:

* :mod:`repro.http.envelopes` — the wire contract: schema-versioned
  request/response dataclasses (``HTTP_SCHEMA_VERSION``) and the
  mapping from the :mod:`repro.api.errors` hierarchy onto structured
  JSON error bodies with HTTP status codes;
* :class:`ServingApp` (:mod:`repro.http.app`) — the transport-agnostic
  router: ``(method, path, body)`` in, ``(status, payload, headers)``
  out, over one :class:`repro.serving.JOCLService` or
  :class:`repro.serving.JOCLClusterService`;
* :class:`HTTPServingServer` (:mod:`repro.http.server`) — the asyncio
  HTTP/1.1 transport: a background event loop feeding a worker pool,
  with bounded in-flight backpressure (429 + ``Retry-After``),
  per-request timeouts (504) and graceful drain-on-shutdown.

The front-end is what finally makes the serving layer's micro-batching
pay: concurrent network arrivals pile up in the session queue, and the
``batch_window_ms`` knob (:class:`repro.serving.JOCLService`) holds
the leader briefly so they coalesce into shared decode batches —
:mod:`repro.http.loadgen` generates exactly that traffic (closed- and
open-loop, mixed read/write, hot-key skew) and
``benchmarks/test_http_serving.py`` gates the win in
``BENCH_http.json``.

Endpoints (all JSON; see ``docs/serving.md``):

========================  ======================================
``POST /v1/resolve``      one mention -> joint answer
``POST /v1/resolve_many`` mention batch -> answers in order
``POST /v1/ingest``       OIE triple records -> incremental ingest
``POST /v1/run_joint``    full joint inference report
``POST /v1/checkpoint``   snapshot to the session's state store
``POST /v1/rollback``     swap serving back to a snapshot
``GET /v1/stats``         engine + serving + transport telemetry
``GET /healthz``          liveness and the draining flag
========================  ======================================
"""

from repro.http.app import ServingApp
from repro.http.envelopes import (
    HTTP_SCHEMA_VERSION,
    CheckpointResponse,
    ErrorResponse,
    HealthResponse,
    IngestRequest,
    IngestResponse,
    ResolveManyRequest,
    ResolveManyResponse,
    ResolveRequest,
    ResolveResponse,
    RollbackRequest,
    RollbackResponse,
    RunJointResponse,
    StatsResponse,
    error_response,
)
from repro.http.loadgen import (
    LoadGenConfig,
    LoadReport,
    PlannedRequest,
    build_request_plan,
    run_load,
)
from repro.http.server import HTTPServingServer, ServerConfig

__all__ = [
    "HTTP_SCHEMA_VERSION",
    "CheckpointResponse",
    "ErrorResponse",
    "HTTPServingServer",
    "HealthResponse",
    "IngestRequest",
    "IngestResponse",
    "LoadGenConfig",
    "LoadReport",
    "PlannedRequest",
    "ResolveManyRequest",
    "ResolveManyResponse",
    "ResolveRequest",
    "ResolveResponse",
    "RollbackRequest",
    "RollbackResponse",
    "RunJointResponse",
    "ServerConfig",
    "ServingApp",
    "StatsResponse",
    "build_request_plan",
    "error_response",
    "run_load",
]
