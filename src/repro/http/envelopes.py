"""Schema-versioned JSON envelopes of the HTTP serving front-end.

Every payload that crosses the HTTP boundary — requests in, responses
out — is a frozen dataclass here with a ``to_dict()`` / ``from_dict()``
pair carrying :data:`HTTP_SCHEMA_VERSION` and a ``type`` discriminator,
exactly the contract :mod:`repro.api.results` set for in-process
payloads (and the SCHEMA analyzers enforce): a client on the other side
of the wire can evolve independently as long as it speaks the declared
version, and a malformed body raises
:class:`repro.api.errors.SchemaError` instead of leaking a half-parsed
object or a raw ``KeyError``.

The module also owns the **error mapping**: :func:`error_response`
translates the :mod:`repro.api.errors` hierarchy into structured
:class:`ErrorResponse` bodies with HTTP status codes — a traceback
never crosses the wire, and an exception type the hierarchy does not
know is reported as an opaque ``internal`` error.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.api.errors import (
    CheckpointError,
    EngineStateError,
    IngestError,
    InvalidRequestError,
    JOCLAPIError,
    SchemaError,
    SchemaVersionError,
    TrainingError,
    UnknownMentionError,
)
from repro.okb.triples import OIETriple

#: Version of the wire format produced by every ``to_dict`` below.
#: Bump on any backward-incompatible payload change.
HTTP_SCHEMA_VERSION = 1


def _envelope(type_name: str) -> dict:
    return {"schema_version": HTTP_SCHEMA_VERSION, "type": type_name}


def check_envelope(payload: object, expected_type: str) -> Mapping:
    """Validate the common HTTP payload envelope; return the mapping.

    Raises :class:`SchemaError` when the payload is not a mapping or is
    of the wrong request/response type, :class:`SchemaVersionError`
    when the declared schema version is not the one this build speaks.
    """
    if not isinstance(payload, Mapping):
        raise SchemaError(
            f"expected a mapping payload, got {type(payload).__name__}"
        )
    version = payload.get("schema_version")
    if version != HTTP_SCHEMA_VERSION:
        raise SchemaVersionError(version, HTTP_SCHEMA_VERSION)
    found_type = payload.get("type")
    if found_type != expected_type:
        raise SchemaError(
            f"payload type {found_type!r} does not match expected "
            f"{expected_type!r}"
        )
    return payload


def _require(payload: Mapping, key: str, type_name: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise SchemaError(f"{type_name} payload is missing field {key!r}") from None


@contextmanager
def _parsing(type_name: str) -> Iterator[None]:
    """Translate body-parse failures into :class:`SchemaError`."""
    try:
        yield
    except SchemaError:
        raise
    except (TypeError, ValueError, KeyError, AttributeError) as error:
        raise SchemaError(f"malformed {type_name} payload: {error}") from error


def _optional_kind(payload: Mapping, type_name: str) -> str | None:
    kind = payload.get("kind")
    if kind is not None and not isinstance(kind, str):
        raise SchemaError(
            f"{type_name} payload field 'kind' must be a string or null, "
            f"got {type(kind).__name__}"
        )
    return kind


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResolveRequest:
    """``POST /v1/resolve`` body: one mention, optional slot kind."""

    TYPE = "resolve_request"

    mention: str
    kind: str | None = None

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(mention=self.mention, kind=self.kind)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ResolveRequest:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            mention = _require(payload, "mention", cls.TYPE)
            if not isinstance(mention, str):
                raise SchemaError(
                    f"{cls.TYPE} payload field 'mention' must be a string, "
                    f"got {type(mention).__name__}"
                )
            return cls(mention=mention, kind=_optional_kind(payload, cls.TYPE))


@dataclass(frozen=True)
class ResolveManyRequest:
    """``POST /v1/resolve_many`` body: a mention batch, one shared kind."""

    TYPE = "resolve_many_request"

    mentions: tuple[str, ...]
    kind: str | None = None

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(mentions=list(self.mentions), kind=self.kind)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ResolveManyRequest:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            mentions = _require(payload, "mentions", cls.TYPE)
            if isinstance(mentions, str) or not all(
                isinstance(mention, str) for mention in mentions
            ):
                raise SchemaError(
                    f"{cls.TYPE} payload field 'mentions' must be a list of "
                    f"strings"
                )
            return cls(
                mentions=tuple(mentions),
                kind=_optional_kind(payload, cls.TYPE),
            )


@dataclass(frozen=True)
class IngestRequest:
    """``POST /v1/ingest`` body: a batch of OIE triple records."""

    TYPE = "ingest_request"

    triples: tuple[OIETriple, ...]

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(triples=[triple.to_record() for triple in self.triples])
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> IngestRequest:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            records = _require(payload, "triples", cls.TYPE)
            if isinstance(records, (str, Mapping)):
                raise SchemaError(
                    f"{cls.TYPE} payload field 'triples' must be a list of "
                    f"triple records"
                )
            return cls(
                triples=tuple(
                    OIETriple.from_record(record) for record in records
                )
            )


@dataclass(frozen=True)
class RollbackRequest:
    """``POST /v1/rollback`` body; ``snapshot=None`` means the store's
    current checkpoint."""

    TYPE = "rollback_request"

    snapshot: str | None = None

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(snapshot=self.snapshot)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> RollbackRequest:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            snapshot = payload.get("snapshot")
            if snapshot is not None and not isinstance(snapshot, str):
                raise SchemaError(
                    f"{cls.TYPE} payload field 'snapshot' must be a string "
                    f"or null, got {type(snapshot).__name__}"
                )
            return cls(snapshot=snapshot)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResolveResponse:
    """``/v1/resolve`` answer: one nested
    :meth:`repro.api.results.ResolveResult.to_dict` payload."""

    TYPE = "resolve_response"

    result: dict

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(result=self.result)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ResolveResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(result=dict(_require(payload, "result", cls.TYPE)))


@dataclass(frozen=True)
class ResolveManyResponse:
    """``/v1/resolve_many`` answer: nested resolve-result payloads, in
    request order."""

    TYPE = "resolve_many_response"

    results: tuple[dict, ...]

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(results=list(self.results))
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ResolveManyResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                results=tuple(
                    dict(result)
                    for result in _require(payload, "results", cls.TYPE)
                )
            )


@dataclass(frozen=True)
class IngestResponse:
    """``/v1/ingest`` answer.

    ``ingested`` is the number of triples applied; ``report`` nests the
    cluster's routed :meth:`repro.cluster.IngestReport.to_dict` when the
    server fronts a :class:`repro.serving.JOCLClusterService` (``None``
    for a single-engine session).
    """

    TYPE = "ingest_response"

    ingested: int
    report: dict | None = None

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(ingested=self.ingested, report=self.report)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> IngestResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            report = payload.get("report")
            return cls(
                ingested=int(_require(payload, "ingested", cls.TYPE)),
                report=None if report is None else dict(report),
            )


@dataclass(frozen=True)
class RunJointResponse:
    """``/v1/run_joint`` answer: the nested engine/cluster report payload."""

    TYPE = "run_joint_response"

    report: dict

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(report=self.report)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> RunJointResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(report=dict(_require(payload, "report", cls.TYPE)))


@dataclass(frozen=True)
class CheckpointResponse:
    """``/v1/checkpoint`` answer.

    A single-engine session returns the ``snapshot`` id; a cluster
    session returns the cluster ``manifest`` (its shard snapshot map).
    Exactly one of the two is non-``None``.
    """

    TYPE = "checkpoint_response"

    snapshot: str | None = None
    manifest: dict | None = None

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(snapshot=self.snapshot, manifest=self.manifest)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> CheckpointResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            snapshot = payload.get("snapshot")
            manifest = payload.get("manifest")
            if snapshot is not None and not isinstance(snapshot, str):
                raise SchemaError(
                    f"{cls.TYPE} payload field 'snapshot' must be a string "
                    f"or null, got {type(snapshot).__name__}"
                )
            return cls(
                snapshot=snapshot,
                manifest=None if manifest is None else dict(manifest),
            )


@dataclass(frozen=True)
class RollbackResponse:
    """``/v1/rollback`` answer: the snapshot id now serving."""

    TYPE = "rollback_response"

    snapshot: str

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(snapshot=self.snapshot)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> RollbackResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            snapshot = _require(payload, "snapshot", cls.TYPE)
            if not isinstance(snapshot, str):
                raise SchemaError(
                    f"{cls.TYPE} payload field 'snapshot' must be a string, "
                    f"got {type(snapshot).__name__}"
                )
            return cls(snapshot=snapshot)


@dataclass(frozen=True)
class StatsResponse:
    """``/v1/stats`` answer.

    ``engine`` nests the engine's own stats payload
    (:class:`repro.api.results.EngineStats` or
    :class:`repro.cluster.ClusterStats` ``to_dict``); ``serving`` the
    per-session micro-batching/latency telemetry (one mapping per
    session — a single-engine service contributes exactly one, a
    cluster one per shard); ``server`` the transport gauges
    (``in_flight``, ``max_in_flight``, ``draining``, ...) of the HTTP
    process, empty when the app runs without one.
    """

    TYPE = "stats_response"

    engine: dict
    serving: tuple[dict, ...]
    server: dict

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(
            engine=self.engine,
            serving=list(self.serving),
            server=self.server,
        )
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> StatsResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                engine=dict(_require(payload, "engine", cls.TYPE)),
                serving=tuple(
                    dict(entry)
                    for entry in _require(payload, "serving", cls.TYPE)
                ),
                server=dict(_require(payload, "server", cls.TYPE)),
            )


@dataclass(frozen=True)
class HealthResponse:
    """``/healthz`` answer: liveness plus the draining flag."""

    TYPE = "health_response"

    status: str
    draining: bool = False

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(status=self.status, draining=self.draining)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> HealthResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            status = _require(payload, "status", cls.TYPE)
            if not isinstance(status, str):
                raise SchemaError(
                    f"{cls.TYPE} payload field 'status' must be a string, "
                    f"got {type(status).__name__}"
                )
            return cls(
                status=status, draining=bool(payload.get("draining", False))
            )


@dataclass(frozen=True)
class ErrorResponse:
    """Structured error body; every non-2xx response carries one.

    ``status`` is the HTTP status code the body shipped under, ``code``
    a stable machine-readable discriminator (clients branch on it, not
    on the message), ``message`` human-readable context —
    **never** a traceback.  ``retry_after_s`` accompanies 429/503 so
    clients can back off without parsing headers.
    """

    TYPE = "error_response"

    status: int
    code: str
    message: str
    retry_after_s: float | None = None

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(
            status=self.status,
            code=self.code,
            message=self.message,
            retry_after_s=self.retry_after_s,
        )
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ErrorResponse:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            retry_after = payload.get("retry_after_s")
            return cls(
                status=int(_require(payload, "status", cls.TYPE)),
                code=str(_require(payload, "code", cls.TYPE)),
                message=str(_require(payload, "message", cls.TYPE)),
                retry_after_s=(
                    None if retry_after is None else float(retry_after)
                ),
            )


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
#: Most-specific-first mapping of the :mod:`repro.api.errors` hierarchy
#: onto (HTTP status, stable error code).  ``JOCLAPIError`` last: any
#: API error a future subclass adds still maps to a structured 500
#: instead of a traceback.
ERROR_STATUS: tuple[tuple[type[BaseException], int, str], ...] = (
    (SchemaVersionError, 400, "schema_version"),
    (SchemaError, 400, "schema"),
    (InvalidRequestError, 400, "invalid_request"),
    (UnknownMentionError, 404, "unknown_mention"),
    (IngestError, 409, "ingest_conflict"),
    (CheckpointError, 409, "checkpoint"),
    (EngineStateError, 409, "engine_state"),
    (TrainingError, 422, "training"),
    (JOCLAPIError, 500, "api_error"),
)


def error_response(error: BaseException) -> ErrorResponse:
    """Map an exception onto the structured error body it ships as.

    :mod:`repro.api.errors` subclasses keep their message (they are
    written for callers); anything else is reported as an opaque
    ``internal`` error so unexpected exceptions never leak internals
    across the process boundary.
    """
    for exc_type, status, code in ERROR_STATUS:
        if isinstance(error, exc_type):
            return ErrorResponse(status=status, code=code, message=str(error))
    return ErrorResponse(
        status=500, code="internal", message="internal server error"
    )
