"""Sum-product loopy belief propagation with a configurable schedule.

The paper (Section 3.4) prescribes a two-phase working procedure per
iteration:

1. factor -> variable messages, template group by template group
   (``F1/F2/F3``, then ``U1/U2/U3``, then ``F4/F5/F6``, then ``U4``,
   then ``U5/U6/U7``);
2. variable -> factor messages, variable group by variable group
   (canonicalization variables first, then linking variables).

:class:`Schedule` encodes exactly that; :class:`LoopyBP` executes it
until the largest factor->variable message change drops below ``tol``
(the paper reports convergence within ~20 iterations).

Evidence (the labeled configuration ``Y^L`` used for the clamped
learning pass) is supported by masking variable states: a clamped
variable sends a delta message.

For execution runtimes (:mod:`repro.runtime`) the run parameters are
factored out into the frozen :class:`LBPSettings`, and
:func:`merge_results` recombines per-component :class:`LBPResult` parts
(from :func:`repro.factorgraph.partition.partition_graph` subgraphs)
into one whole-graph result with a deterministic merge order.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.factorgraph.graph import Factor, FactorGraph, Variable

#: Messages below this mass are floored to keep divisions stable.
_EPSILON = 1e-12


@dataclass(frozen=True)
class ScheduleStep:
    """One step of the message-passing order.

    ``kind="factors"``: update messages *from* all factors whose template
    name is in ``names`` to their variables.  ``kind="variables"``:
    update messages from all variables whose group tag is in ``names``.
    An empty ``names`` means "all".
    """

    kind: str
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("factors", "variables"):
            raise ValueError(f"unknown step kind {self.kind!r}")


@dataclass(frozen=True)
class Schedule:
    """An ordered list of :class:`ScheduleStep`.

    The default (flooding) schedule updates all factor messages then all
    variable messages once per iteration.
    """

    steps: tuple[ScheduleStep, ...] = (
        ScheduleStep(kind="factors"),
        ScheduleStep(kind="variables"),
    )

    @classmethod
    def flooding(cls) -> Schedule:
        """All factors, then all variables."""
        return cls()

    @classmethod
    def grouped(
        cls,
        factor_groups: Sequence[Sequence[str]],
        variable_groups: Sequence[Sequence[str]],
    ) -> Schedule:
        """Factor-template groups in order, then variable groups in order."""
        steps = [
            ScheduleStep(kind="factors", names=tuple(group))
            for group in factor_groups
        ]
        steps.extend(
            ScheduleStep(kind="variables", names=tuple(group))
            for group in variable_groups
        )
        return cls(steps=tuple(steps))


@dataclass(frozen=True)
class LBPSettings:
    """Run parameters of one LBP execution, separated from the graph.

    The plan/execute split of :mod:`repro.runtime` ships these to
    workers alongside each component subgraph; :class:`LoopyBP` itself
    accepts them via :meth:`LoopyBP.from_settings`.
    """

    max_iterations: int = 50
    tolerance: float = 1e-4
    damping: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.damping < 1.0:
            raise ValueError(f"damping must be in [0, 1), got {self.damping}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )


@dataclass
class LBPMessages:
    """The message state of an LBP run, keyed like the runner's tables.

    ``f2v`` maps ``(factor name, variable name)`` to the factor->variable
    message, ``v2f`` maps ``(variable name, factor name)`` to the
    variable->factor message.  Captured on request (``keep_messages``)
    so a later run over an overlapping graph can warm-start from the
    previous converged state (see :class:`repro.runtime.IncrementalRuntime`).
    """

    f2v: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)
    v2f: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)


@dataclass
class LBPResult:
    """Outcome of one LBP run: marginals, factor beliefs, diagnostics."""

    marginals: dict[str, np.ndarray]
    factor_beliefs: dict[str, np.ndarray]
    iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)
    _graph: FactorGraph | None = None
    #: Final message state; populated only when the run was asked to
    #: keep it (never part of equality or decisions).
    messages: LBPMessages | None = field(default=None, compare=False)

    def marginal(self, variable_name: str) -> np.ndarray:
        """Marginal distribution over the variable's domain."""
        return self.marginals[variable_name]

    def map_state(self, variable_name: str) -> Hashable:
        """The state label with the highest marginal probability."""
        assert self._graph is not None
        variable = self._graph.variables[variable_name]
        return variable.domain[int(np.argmax(self.marginals[variable_name]))]

    def map_probability(self, variable_name: str) -> float:
        """Probability mass of the MAP state."""
        return float(np.max(self.marginals[variable_name]))

    def expected_features(self) -> dict[str, np.ndarray]:
        """Per-template expected feature vectors ``E[h_j]`` summed over
        factor instances — the quantity ``E[Q]`` of Formula 6."""
        assert self._graph is not None
        expectations: dict[str, np.ndarray] = {
            name: np.zeros(template.n_features)
            for name, template in self._graph.templates.items()
        }
        for factor_name, belief in self.factor_beliefs.items():
            factor = self._graph.factors[factor_name]
            flat = belief.reshape(-1)
            expectations[factor.template.name] += flat @ factor.feature_table
        return expectations


class LoopyBP:
    """Sum-product LBP runner.

    Parameters
    ----------
    graph:
        The factor graph.
    schedule:
        Message-passing order (defaults to flooding).
    max_iterations:
        Iteration cap.
    tolerance:
        Convergence threshold on the max factor->variable message change.
    damping:
        Message damping in ``[0, 1)``: ``new = (1-d)*computed + d*old``.
    """

    def __init__(
        self,
        graph: FactorGraph,
        schedule: Schedule | None = None,
        max_iterations: int = 50,
        tolerance: float = 1e-4,
        damping: float = 0.0,
    ) -> None:
        # LBPSettings.__post_init__ is the single validation point.
        self._graph = graph
        self._schedule = schedule or Schedule.flooding()
        self._settings = LBPSettings(
            max_iterations=max_iterations, tolerance=tolerance, damping=damping
        )

    @classmethod
    def from_settings(
        cls,
        graph: FactorGraph,
        schedule: Schedule | None = None,
        settings: LBPSettings | None = None,
    ) -> LoopyBP:
        """Construct a runner from an :class:`LBPSettings` bundle."""
        runner = cls(graph, schedule=schedule)
        runner._settings = settings or LBPSettings()
        return runner

    @property
    def _max_iterations(self) -> int:
        return self._settings.max_iterations

    @property
    def _tolerance(self) -> float:
        return self._settings.tolerance

    @property
    def _damping(self) -> float:
        return self._settings.damping

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        evidence: Mapping[str, Hashable] | None = None,
        warm_start: LBPMessages | None = None,
        keep_messages: bool = False,
    ) -> LBPResult:
        """Run LBP to convergence and return marginals and beliefs.

        Parameters
        ----------
        evidence:
            Variable name -> clamped state label (the labeled
            configuration ``Y^L`` for the clamped learning pass).
        warm_start:
            Message state from a previous run to seed from.  Entries
            whose key does not exist in this graph or whose shape does
            not match the variable's cardinality are ignored — callers
            are responsible for only passing messages of variables whose
            *domain* is unchanged (a same-size but relabeled domain
            would silently mis-seed).  Warm starting changes where the
            fixed-point search begins, not which fixed points exist.
        keep_messages:
            Attach the final message state to the result (for future
            warm starts).
        """
        masks = self._build_masks(evidence or {})
        f2v: dict[tuple[str, str], np.ndarray] = {}
        v2f: dict[tuple[str, str], np.ndarray] = {}
        for factor in self._graph.factors.values():
            for variable in factor.variables:
                f2v[(factor.name, variable.name)] = self._uniform(variable)
                v2f[(variable.name, factor.name)] = self._masked_uniform(
                    variable, masks
                )
        if warm_start is not None:
            self._seed_messages(f2v, v2f, warm_start, masks)

        residuals: list[float] = []
        converged = False
        iterations = 0
        for iteration in range(self._max_iterations):
            iterations = iteration + 1
            residual = self._sweep(f2v, v2f, masks)
            residuals.append(residual)
            if residual < self._tolerance:
                converged = True
                break

        marginals = {
            name: self._variable_belief(variable, f2v, masks)
            for name, variable in self._graph.variables.items()
        }
        factor_beliefs = {
            name: self._factor_belief(factor, v2f)
            for name, factor in self._graph.factors.items()
        }
        return LBPResult(
            marginals=marginals,
            factor_beliefs=factor_beliefs,
            iterations=iterations,
            converged=converged,
            residuals=residuals,
            _graph=self._graph,
            messages=LBPMessages(f2v=f2v, v2f=v2f) if keep_messages else None,
        )

    def _seed_messages(
        self,
        f2v: dict[tuple[str, str], np.ndarray],
        v2f: dict[tuple[str, str], np.ndarray],
        warm_start: LBPMessages,
        masks: dict[str, np.ndarray],
    ) -> None:
        """Overwrite initial messages with matching warm-start entries.

        Seeded variable->factor messages are re-masked so evidence
        clamps always win over the previous run's state.  The seeded
        arrays are never mutated afterwards (updates replace table
        entries wholesale), so sharing them with the caller is safe.
        """
        for key, message in warm_start.f2v.items():
            existing = f2v.get(key)
            if existing is not None and existing.shape == message.shape:
                f2v[key] = message
        for key, message in warm_start.v2f.items():
            existing = v2f.get(key)
            if existing is not None and existing.shape == message.shape:
                v2f[key] = self._normalize(message * masks[key[0]])

    # ------------------------------------------------------------------
    # Message updates
    # ------------------------------------------------------------------
    def _sweep(
        self,
        f2v: dict[tuple[str, str], np.ndarray],
        v2f: dict[tuple[str, str], np.ndarray],
        masks: dict[str, np.ndarray],
    ) -> float:
        """Execute one full schedule pass; return the max message change."""
        residual = 0.0
        for step in self._schedule.steps:
            if step.kind == "factors":
                for factor in self._select_factors(step.names):
                    residual = max(residual, self._update_factor(factor, f2v, v2f))
            else:
                for variable in self._select_variables(step.names):
                    self._update_variable(variable, f2v, v2f, masks)
        return residual

    def _select_factors(self, template_names: tuple[str, ...]) -> list[Factor]:
        factors = self._graph.factors.values()
        if not template_names:
            return list(factors)
        wanted = set(template_names)
        return [factor for factor in factors if factor.template.name in wanted]

    def _select_variables(self, group_names: tuple[str, ...]) -> list[Variable]:
        variables = self._graph.variables.values()
        if not group_names:
            return list(variables)
        wanted = set(group_names)
        return [variable for variable in variables if variable.group in wanted]

    def _update_factor(
        self,
        factor: Factor,
        f2v: dict[tuple[str, str], np.ndarray],
        v2f: dict[tuple[str, str], np.ndarray],
    ) -> float:
        """Recompute messages from ``factor`` to each scope variable."""
        values = factor.values()
        residual = 0.0
        for position, variable in enumerate(factor.variables):
            # Multiply the potential by incoming messages from all *other*
            # scope variables, then marginalize onto `variable`'s axis.
            product = values
            for other_position, other in enumerate(factor.variables):
                if other_position == position:
                    continue
                message = v2f[(other.name, factor.name)]
                shape = [1] * values.ndim
                shape[other_position] = other.cardinality
                product = product * message.reshape(shape)
            axes = tuple(
                axis for axis in range(values.ndim) if axis != position
            )
            message = product.sum(axis=axes)
            message = self._normalize(message)
            key = (factor.name, variable.name)
            if self._damping > 0.0:
                message = (1.0 - self._damping) * message + self._damping * f2v[key]
                message = self._normalize(message)
            residual = max(residual, float(np.abs(message - f2v[key]).max()))
            f2v[key] = message
        return residual

    def _update_variable(
        self,
        variable: Variable,
        f2v: dict[tuple[str, str], np.ndarray],
        v2f: dict[tuple[str, str], np.ndarray],
        masks: dict[str, np.ndarray],
    ) -> None:
        """Recompute messages from ``variable`` to each adjacent factor."""
        factors = self._graph.factors_of(variable.name)
        incoming = {
            factor.name: f2v[(factor.name, variable.name)] for factor in factors
        }
        mask = masks[variable.name]
        for factor in factors:
            message = mask.astype(float)
            for other_name, other_message in incoming.items():
                if other_name == factor.name:
                    continue
                message = message * other_message
            v2f[(variable.name, factor.name)] = self._normalize(message)

    # ------------------------------------------------------------------
    # Beliefs
    # ------------------------------------------------------------------
    def _variable_belief(
        self,
        variable: Variable,
        f2v: dict[tuple[str, str], np.ndarray],
        masks: dict[str, np.ndarray],
    ) -> np.ndarray:
        belief = masks[variable.name].astype(float)
        for factor in self._graph.factors_of(variable.name):
            belief = belief * f2v[(factor.name, variable.name)]
        return self._normalize(belief)

    def _factor_belief(
        self, factor: Factor, v2f: dict[tuple[str, str], np.ndarray]
    ) -> np.ndarray:
        belief = factor.values().astype(float)
        for position, variable in enumerate(factor.variables):
            message = v2f[(variable.name, factor.name)]
            shape = [1] * belief.ndim
            shape[position] = variable.cardinality
            belief = belief * message.reshape(shape)
        total = belief.sum()
        if total <= 0.0:
            belief = np.ones_like(belief)
            total = belief.sum()
        return belief / total

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _build_masks(
        self, evidence: Mapping[str, Hashable]
    ) -> dict[str, np.ndarray]:
        masks: dict[str, np.ndarray] = {}
        for name, variable in self._graph.variables.items():
            mask = np.ones(variable.cardinality, dtype=bool)
            if name in evidence:
                mask[:] = False
                mask[variable.index_of(evidence[name])] = True
            masks[name] = mask
        return masks

    @staticmethod
    def _uniform(variable: Variable) -> np.ndarray:
        return np.full(variable.cardinality, 1.0 / variable.cardinality)

    def _masked_uniform(
        self, variable: Variable, masks: dict[str, np.ndarray]
    ) -> np.ndarray:
        return self._normalize(masks[variable.name].astype(float))

    @staticmethod
    def _normalize(message: np.ndarray) -> np.ndarray:
        clipped = np.maximum(message, 0.0)
        total = clipped.sum()
        if total <= _EPSILON:
            return np.full(message.shape, 1.0 / message.size)
        return clipped / total


def merge_results(
    parts: Sequence[LBPResult], graph: FactorGraph
) -> LBPResult:
    """Recombine per-component LBP results into one whole-graph result.

    ``parts`` are results over disjoint subgraphs of ``graph`` (from
    :func:`repro.factorgraph.partition.partition_graph`).  The merge is
    deterministic regardless of which worker finished first: marginals
    and factor beliefs are emitted in ``graph``'s variable/factor
    registration order, ``iterations`` is the slowest component's count,
    ``converged`` requires every component to have converged, and
    ``residuals[k]`` is the max residual across the components still
    running at iteration ``k``.
    """
    if not parts:
        raise ValueError("merge_results needs at least one part")
    by_variable: dict[str, np.ndarray] = {}
    by_factor: dict[str, np.ndarray] = {}
    for part in parts:
        by_variable.update(part.marginals)
        by_factor.update(part.factor_beliefs)
    missing = [name for name in graph.variables if name not in by_variable]
    if missing:
        raise ValueError(
            f"merged parts cover {len(by_variable)} variables but the graph "
            f"has {len(graph.variables)}; missing e.g. {missing[:3]}"
        )
    iterations = max(part.iterations for part in parts)
    residuals = [
        max(
            (part.residuals[k] for part in parts if k < len(part.residuals)),
            default=0.0,
        )
        for k in range(iterations)
    ]
    return LBPResult(
        marginals={name: by_variable[name] for name in graph.variables},
        factor_beliefs={name: by_factor[name] for name in graph.factors},
        iterations=iterations,
        converged=all(part.converged for part in parts),
        residuals=residuals,
        _graph=graph,
    )
