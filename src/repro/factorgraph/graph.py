"""Factor-graph data structures: variables, templates, factors, graph.

A :class:`Variable` has a finite labeled domain and belongs to a named
*group* (the LBP schedule addresses variables by group).  A
:class:`FactorTemplate` owns a shared weight vector; each
:class:`Factor` instance carries a precomputed **feature table** with
one feature vector per joint assignment of its scope.  The factor's
(unnormalized) value for an assignment is ``exp(weights · features)``
(Formula 1 of the paper — local normalizers ``Z_j`` cancel in both LBP
messages and the likelihood gradient, so they are never materialized).
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Sequence

import numpy as np


class Variable:
    """A discrete random variable.

    Parameters
    ----------
    name:
        Unique name within the graph.
    domain:
        Ordered state labels; at least one.
    group:
        Schedule tag (e.g. ``"canonicalization"`` or ``"linking"``).
    """

    def __init__(
        self, name: str, domain: Sequence[Hashable], group: str = "default"
    ) -> None:
        if not domain:
            raise ValueError(f"variable {name!r} needs a non-empty domain")
        labels = tuple(domain)
        if len(set(labels)) != len(labels):
            raise ValueError(f"variable {name!r} has duplicate states")
        self.name = name
        self.domain = labels
        self.group = group
        self._state_index = {label: i for i, label in enumerate(labels)}

    @property
    def cardinality(self) -> int:
        """Number of states."""
        return len(self.domain)

    def index_of(self, label: Hashable) -> int:
        """Position of a state label in the domain."""
        return self._state_index[label]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r}, |dom|={self.cardinality}, group={self.group})"


class FactorTemplate:
    """A factor *kind* with weights shared across all its instances.

    Parameters
    ----------
    name:
        Template name (``"F1"``, ``"U5"``, ...).
    feature_names:
        Names of the feature functions; fixes dimensionality.
    initial_weights:
        Starting weights (defaults to all ones, which makes an untrained
        factor simply multiply its feature scores into the potential).
    """

    def __init__(
        self,
        name: str,
        feature_names: Sequence[str],
        initial_weights: Sequence[float] | None = None,
    ) -> None:
        if not feature_names:
            raise ValueError(f"template {name!r} needs at least one feature")
        self.name = name
        self.feature_names = tuple(feature_names)
        if initial_weights is None:
            weights = np.ones(len(self.feature_names))
        else:
            weights = np.asarray(initial_weights, dtype=float)
            if weights.shape != (len(self.feature_names),):
                raise ValueError(
                    f"template {name!r}: {len(self.feature_names)} features "
                    f"but weights of shape {weights.shape}"
                )
        self.weights = weights
        self.version = 0  # bumped on weight updates to invalidate caches

    @property
    def n_features(self) -> int:
        """Feature-vector dimensionality."""
        return len(self.feature_names)

    def set_weights(self, weights: np.ndarray) -> None:
        """Replace the weight vector (invalidates factor value caches)."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != self.weights.shape:
            raise ValueError(
                f"template {self.name!r}: expected shape {self.weights.shape}, "
                f"got {weights.shape}"
            )
        self.weights = weights
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FactorTemplate({self.name!r}, features={self.feature_names})"


class Factor:
    """One factor instance: a template applied to a variable scope.

    Parameters
    ----------
    name:
        Unique name within the graph.
    template:
        The shared-weight template.
    variables:
        Scope, as :class:`Variable` objects (order fixes the assignment
        enumeration).
    feature_table:
        Array of shape ``(prod(cardinalities), n_features)``; row ``k``
        is the feature vector of the ``k``-th assignment in C-order
        (:func:`numpy.ndindex` over the scope cardinalities).
    """

    def __init__(
        self,
        name: str,
        template: FactorTemplate,
        variables: Sequence[Variable],
        feature_table: np.ndarray,
    ) -> None:
        if not variables:
            raise ValueError(f"factor {name!r} needs a non-empty scope")
        self.name = name
        self.template = template
        self.variables = tuple(variables)
        self.shape = tuple(variable.cardinality for variable in self.variables)
        expected_rows = int(np.prod(self.shape))
        table = np.asarray(feature_table, dtype=float)
        if table.shape != (expected_rows, template.n_features):
            raise ValueError(
                f"factor {name!r}: expected feature table "
                f"{(expected_rows, template.n_features)}, got {table.shape}"
            )
        self.feature_table = table
        self._values: np.ndarray | None = None
        self._values_version = -1

    def values(self) -> np.ndarray:
        """Unnormalized potentials ``exp(w·f)``, shaped like the scope.

        Cached; recomputed when the template weights change.
        """
        if self._values is None or self._values_version != self.template.version:
            scores = self.feature_table @ self.template.weights
            # Subtract the max for numerical stability; a constant factor
            # scale cancels everywhere potentials are used.
            potentials = np.exp(scores - scores.max())
            self._values = potentials.reshape(self.shape)
            self._values_version = self.template.version
        return self._values

    def assignments(self) -> list[tuple[int, ...]]:
        """All joint state-index assignments, in feature-table row order."""
        return list(itertools.product(*(range(card) for card in self.shape)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = ", ".join(variable.name for variable in self.variables)
        return f"Factor({self.name!r}, template={self.template.name}, scope=[{scope}])"


class FactorGraph:
    """A bipartite graph of variables and factors."""

    def __init__(self) -> None:
        self._variables: dict[str, Variable] = {}
        self._factors: dict[str, Factor] = {}
        self._templates: dict[str, FactorTemplate] = {}
        self._factors_of_variable: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_template(self, template: FactorTemplate) -> FactorTemplate:
        """Register a template; re-registering the same object is a no-op."""
        existing = self._templates.get(template.name)
        if existing is template:
            return template
        if existing is not None:
            raise ValueError(f"duplicate template name {template.name!r}")
        self._templates[template.name] = template
        return template

    def add_variable(self, variable: Variable) -> Variable:
        """Register a variable; names must be unique."""
        if variable.name in self._variables:
            raise ValueError(f"duplicate variable name {variable.name!r}")
        self._variables[variable.name] = variable
        self._factors_of_variable[variable.name] = []
        return variable

    def add_factor(
        self,
        name: str,
        template: FactorTemplate,
        variable_names: Sequence[str],
        feature_table: np.ndarray,
    ) -> Factor:
        """Create and register a factor over existing variables."""
        if name in self._factors:
            raise ValueError(f"duplicate factor name {name!r}")
        if template.name not in self._templates:
            self.add_template(template)
        if self._templates[template.name] is not template:
            raise ValueError(
                f"factor {name!r} uses a template named {template.name!r} that "
                "differs from the registered one"
            )
        scope = [self._variables[var_name] for var_name in variable_names]
        factor = Factor(name, template, scope, feature_table)
        self._factors[name] = factor
        for variable in scope:
            self._factors_of_variable[variable.name].append(name)
        return factor

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def variables(self) -> dict[str, Variable]:
        """All variables by name."""
        return self._variables

    @property
    def factors(self) -> dict[str, Factor]:
        """All factors by name."""
        return self._factors

    @property
    def templates(self) -> dict[str, FactorTemplate]:
        """All templates by name."""
        return self._templates

    def factors_of(self, variable_name: str) -> list[Factor]:
        """Factors whose scope contains the variable."""
        return [
            self._factors[factor_name]
            for factor_name in self._factors_of_variable[variable_name]
        ]

    def variable_groups(self) -> dict[str, list[Variable]]:
        """Variables bucketed by their schedule group."""
        groups: dict[str, list[Variable]] = {}
        for variable in self._variables.values():
            groups.setdefault(variable.group, []).append(variable)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FactorGraph(variables={len(self._variables)}, "
            f"factors={len(self._factors)}, templates={len(self._templates)})"
        )
