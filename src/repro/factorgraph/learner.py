"""Template-weight learning by gradient ascent on LBP marginals.

Formula 6 of the paper: the log-likelihood gradient w.r.t. the shared
weights is ``E_{p_ω(Y|Y^L)}[Q] − E_{p_ω(Y)}[Q]``, i.e. the difference
between expected feature counts with the labeled variables *clamped*
(``Y^L``) and *free*.  Both expectations are approximated with the same
two-step LBP algorithm the model uses at inference time, so one learning
iteration is exactly two LBP runs.

The paper uses learning rate 0.05 and observes convergence within
twenty iterations; those are the defaults.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.lbp import LoopyBP, Schedule


@dataclass
class LearningHistory:
    """Per-iteration diagnostics of a learning run."""

    gradient_norms: list[float] = field(default_factory=list)
    weight_snapshots: list[dict[str, np.ndarray]] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of gradient steps taken."""
        return len(self.gradient_norms)

    @property
    def converged(self) -> bool:
        """Whether the final gradient norm fell below the learner's tol."""
        return bool(self.gradient_norms) and self.gradient_norms[-1] < 1e-3


class TemplateLearner:
    """Gradient-ascent learner for shared template weights.

    Parameters
    ----------
    graph:
        The (training) factor graph; its templates are updated in place.
    schedule:
        LBP schedule used for both the clamped and free passes.
    learning_rate:
        Step size (paper: 0.05).
    max_iterations:
        Gradient steps (paper: convergence within 20).
    tolerance:
        Early stop when the global gradient norm drops below this.
    lbp_iterations / lbp_damping:
        Inner-loop LBP controls.
    l2:
        Optional L2 regularization strength on the weights.
    """

    def __init__(
        self,
        graph: FactorGraph,
        schedule: Schedule | None = None,
        learning_rate: float = 0.05,
        max_iterations: int = 20,
        tolerance: float = 1e-3,
        lbp_iterations: int = 30,
        lbp_damping: float = 0.0,
        l2: float = 0.0,
    ) -> None:
        if learning_rate <= 0.0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if l2 < 0.0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        self._graph = graph
        self._schedule = schedule
        self._learning_rate = learning_rate
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._lbp_iterations = lbp_iterations
        self._lbp_damping = lbp_damping
        self._l2 = l2

    def fit(self, evidence: Mapping[str, Hashable]) -> LearningHistory:
        """Maximize ``log P(Y^L)``; returns the learning history.

        Parameters
        ----------
        evidence:
            The labeled configuration ``Y^L``: variable name -> gold
            state label.  Unlabeled variables stay free in both passes.
        """
        if not evidence:
            raise ValueError("evidence must label at least one variable")
        unknown = [name for name in evidence if name not in self._graph.variables]
        if unknown:
            raise KeyError(f"evidence references unknown variables: {unknown[:5]}")
        history = LearningHistory()
        for _iteration in range(self._max_iterations):
            engine = LoopyBP(
                self._graph,
                schedule=self._schedule,
                max_iterations=self._lbp_iterations,
                damping=self._lbp_damping,
            )
            clamped = engine.run(evidence=evidence).expected_features()
            free = engine.run().expected_features()
            gradient_norm = 0.0
            for name, template in self._graph.templates.items():
                gradient = clamped[name] - free[name]
                if self._l2 > 0.0:
                    gradient = gradient - self._l2 * template.weights
                gradient_norm += float(np.dot(gradient, gradient))
                template.set_weights(
                    template.weights + self._learning_rate * gradient
                )
            gradient_norm = float(np.sqrt(gradient_norm))
            history.gradient_norms.append(gradient_norm)
            history.weight_snapshots.append(
                {
                    name: template.weights.copy()
                    for name, template in self._graph.templates.items()
                }
            )
            if gradient_norm < self._tolerance:
                break
        return history

    def transfer_weights_to(self, target: FactorGraph) -> None:
        """Copy learned weights to same-named templates of another graph.

        The paper trains on the ReVerb45K validation split and evaluates
        on held-out graphs; this moves ``ω*`` across.
        """
        for name, template in self._graph.templates.items():
            if name in target.templates:
                target.templates[name].set_weights(template.weights.copy())
