"""Generic discrete factor-graph substrate.

The paper's framework (Section 3) is a *templated* factor graph: factor
instances of the same kind (all ``F1`` factors, all ``U5`` factors, ...)
share one weight vector, and every factor function is exponential-linear
``H_j(C_j) ∝ exp(ω^T h_j(C_j))`` (Formula 1).  This package provides:

* :class:`Variable`, :class:`FactorTemplate`, :class:`Factor`,
  :class:`FactorGraph` — graph construction.
* :class:`Schedule`, :class:`LoopyBP`, :class:`LBPResult` — sum-product
  loopy belief propagation with a configurable message-passing order
  (the paper's two-phase working procedure, Section 3.4).
* :class:`TemplateLearner` — gradient ascent on the log-likelihood,
  where the gradient ``E_{p(Y|Y^L)}[Q] − E_{p(Y)}[Q]`` (Formula 6) is
  estimated from clamped and free LBP marginals.

Observed variables (the paper's pair variables ``s_ij`` and surface
variables ``s_i``) have a single state, so their messages are constant;
we fold them into the factor feature tables, which is mathematically
identical and halves the node count.
"""

from repro.factorgraph.graph import Factor, FactorGraph, FactorTemplate, Variable
from repro.factorgraph.lbp import LBPMessages, LBPResult, LoopyBP, Schedule, ScheduleStep
from repro.factorgraph.learner import LearningHistory, TemplateLearner
from repro.factorgraph.partition import (
    component_subgraph,
    connected_components,
    dirty_components,
    partition_graph,
)

__all__ = [
    "Factor",
    "FactorGraph",
    "FactorTemplate",
    "LBPMessages",
    "LBPResult",
    "LearningHistory",
    "LoopyBP",
    "Schedule",
    "ScheduleStep",
    "TemplateLearner",
    "Variable",
    "component_subgraph",
    "connected_components",
    "dirty_components",
    "partition_graph",
]
