"""Graph segmentation for distributed LBP (Section 3.4, last sentence).

The paper notes "the learning algorithm also can be extended to a
distributed learning version with a graph segmentation algorithm such
as [Jo et al., WSDM'18]".  This module provides the segmentation
primitive: factor graphs decompose into connected components, each of
which is an independent inference problem — LBP marginals computed per
component equal the marginals of the whole graph, so components can be
processed on separate workers.

:func:`connected_components` finds the components;
:func:`assign_factors` maps every factor onto its component in one pass;
:func:`partition_graph` materializes each component as a stand-alone
:class:`~repro.factorgraph.graph.FactorGraph` (templates are *shared*,
not copied, so learned weights stay tied across workers).  This is the
planning substrate of :mod:`repro.runtime`.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.clustering.unionfind import UnionFind
from repro.factorgraph.graph import FactorGraph, Variable


def connected_components(graph: FactorGraph) -> list[frozenset[str]]:
    """Variable-name sets of the graph's connected components.

    Two variables are connected when some factor's scope contains both.
    Isolated variables (no factors) form singleton components.
    """
    finder: UnionFind = UnionFind(graph.variables.keys())
    for factor in graph.factors.values():
        first = factor.variables[0].name
        for other in factor.variables[1:]:
            finder.union(first, other.name)
    components = [frozenset(group) for group in finder.groups()]
    components.sort(key=lambda group: (-len(group), min(group)))
    return components


def dirty_components(
    components: Sequence[Collection[str]], dirty_variables: Collection[str]
) -> frozenset[int]:
    """Indices of the components containing at least one dirty variable.

    The delta-to-dirty-set mapping of incremental inference: an ingest
    batch perturbs only the variables derived from the phrases it
    touches, and LBP messages never cross component boundaries, so a
    component without a dirty variable is unaffected by the batch.
    ``components`` is any per-component collection of variable names
    (e.g. from :func:`connected_components`, or the variable key sets of
    :func:`partition_graph` subgraphs); the returned indices are
    positions into it.
    """
    dirty = set(dirty_variables)
    if not dirty:
        return frozenset()
    return frozenset(
        position
        for position, component in enumerate(components)
        if not dirty.isdisjoint(component)
    )


def assign_factors(
    graph: FactorGraph, components: Sequence[frozenset[str]]
) -> list[list[str]]:
    """Factor names per component, in one pass over the factors.

    Every factor lives entirely inside one true component (a factor's
    scope is connected by definition).  Returns one name list per entry
    of ``components``, each in the graph's factor insertion order.

    Raises ``ValueError`` when ``components`` does not cover the graph's
    variables (e.g. components of a different graph) or cuts through a
    factor scope (i.e. an entry is not a union of true components).
    """
    component_of: dict[str, int] = {}
    for position, component in enumerate(components):
        for name in component:
            component_of[name] = position
    factors_by_component: list[list[str]] = [[] for _ in components]
    for factor in graph.factors.values():
        positions = set()
        for variable in factor.variables:
            try:
                positions.add(component_of[variable.name])
            except KeyError:
                raise ValueError(
                    f"factor {factor.name!r} scopes variable "
                    f"{variable.name!r} which is in no component; "
                    "components must cover the graph"
                ) from None
        if len(positions) > 1:
            raise ValueError(
                f"factor {factor.name!r} straddles the component boundary"
            )
        factors_by_component[positions.pop()].append(factor.name)
    return factors_by_component


def _materialize(
    graph: FactorGraph, component: frozenset[str], factor_names: Sequence[str]
) -> FactorGraph:
    """Stand-alone subgraph over ``component`` with the given factors.

    Templates are re-registered as the *same* objects, so a weight
    update on any subgraph is visible to all (the tied-weights
    requirement of distributed template learning).
    """
    subgraph = FactorGraph()
    for name in sorted(component):
        variable = graph.variables[name]
        subgraph.add_variable(Variable(variable.name, variable.domain, variable.group))
    for factor_name in factor_names:
        factor = graph.factors[factor_name]
        if factor.template.name not in subgraph.templates:
            subgraph.add_template(factor.template)
        subgraph.add_factor(
            factor.name,
            factor.template,
            [variable.name for variable in factor.variables],
            factor.feature_table,
        )
    return subgraph


def component_subgraph(graph: FactorGraph, component: frozenset[str]) -> FactorGraph:
    """Stand-alone factor graph over one component's variables.

    Scans every factor of ``graph`` (one component at a time — batch
    callers should prefer :func:`partition_graph`, which assigns all
    factors in a single pass).  Raises ``ValueError`` if ``component``
    cuts through a factor scope (i.e. it is not a union of true
    components).
    """
    factor_names: list[str] = []
    for factor in graph.factors.values():
        inside = [variable.name in component for variable in factor.variables]
        if not any(inside):
            continue
        if not all(inside):
            raise ValueError(
                f"factor {factor.name!r} straddles the component boundary"
            )
        factor_names.append(factor.name)
    return _materialize(graph, component, factor_names)


def partition_graph(graph: FactorGraph) -> list[FactorGraph]:
    """Split a factor graph into independent per-component subgraphs.

    Components are ordered largest-first (ties broken by smallest
    member), and every factor is assigned to its component in a single
    pass — O(V + F), not O(components × F).
    """
    components = connected_components(graph)
    factors_by_component = assign_factors(graph, components)
    return [
        _materialize(graph, component, factor_names)
        for component, factor_names in zip(components, factors_by_component, strict=True)
    ]
