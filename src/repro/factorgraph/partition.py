"""Graph segmentation for distributed LBP (Section 3.4, last sentence).

The paper notes "the learning algorithm also can be extended to a
distributed learning version with a graph segmentation algorithm such
as [Jo et al., WSDM'18]".  This module provides the segmentation
primitive: factor graphs decompose into connected components, each of
which is an independent inference problem — LBP marginals computed per
component equal the marginals of the whole graph, so components can be
processed on separate workers.

:func:`connected_components` finds the components;
:func:`component_subgraph` materializes one as a stand-alone
:class:`~repro.factorgraph.graph.FactorGraph` (templates are *shared*,
not copied, so learned weights stay tied across workers).
"""

from __future__ import annotations

from repro.clustering.unionfind import UnionFind
from repro.factorgraph.graph import FactorGraph, Variable


def connected_components(graph: FactorGraph) -> list[frozenset[str]]:
    """Variable-name sets of the graph's connected components.

    Two variables are connected when some factor's scope contains both.
    Isolated variables (no factors) form singleton components.
    """
    finder: UnionFind = UnionFind(graph.variables.keys())
    for factor in graph.factors.values():
        first = factor.variables[0].name
        for other in factor.variables[1:]:
            finder.union(first, other.name)
    components = [frozenset(group) for group in finder.groups()]
    components.sort(key=lambda group: (-len(group), min(group)))
    return components


def component_subgraph(graph: FactorGraph, component: frozenset[str]) -> FactorGraph:
    """Stand-alone factor graph over one component's variables.

    Factors are re-registered against the *same* template objects, so a
    weight update on any subgraph is visible to all (the tied-weights
    requirement of distributed template learning).

    Raises ``ValueError`` if ``component`` cuts through a factor scope
    (i.e. it is not a union of true components).
    """
    subgraph = FactorGraph()
    for name in sorted(component):
        variable = graph.variables[name]
        subgraph.add_variable(Variable(variable.name, variable.domain, variable.group))
    for factor in graph.factors.values():
        scope_names = [variable.name for variable in factor.variables]
        inside = [name in component for name in scope_names]
        if not any(inside):
            continue
        if not all(inside):
            raise ValueError(
                f"factor {factor.name!r} straddles the component boundary"
            )
        if factor.template.name not in subgraph.templates:
            subgraph.add_template(factor.template)
        subgraph.add_factor(
            factor.name, factor.template, scope_names, factor.feature_table
        )
    return subgraph


def partition_graph(graph: FactorGraph) -> list[FactorGraph]:
    """Split a factor graph into independent per-component subgraphs."""
    return [
        component_subgraph(graph, component)
        for component in connected_components(graph)
    ]
