"""JSON-safe payloads for factor-graph and LBP state.

The checkpointing subsystem (:mod:`repro.persist`) snapshots a running
engine, including the :class:`~repro.runtime.IncrementalRuntime`'s
cached component subgraphs, converged :class:`~repro.factorgraph.lbp.LBPResult`
parts and message tables.  This module is the factor-graph layer's side
of that contract: every structure is rendered to plain dicts/lists of
JSON scalars and reconstructed *exactly* — Python's ``repr``-based JSON
float round-trip is lossless, so a restored feature table or message
vector is ``np.array_equal`` to the original, which is precisely what
:func:`repro.runtime.incremental.component_unchanged` needs to keep
splicing restored components.

Only the JOCL graph shapes are supported: variable domains must consist
of JSON scalars (strings, ints, bools, floats, ``None``), which holds
for every graph :mod:`repro.core.builder` produces.
"""

from __future__ import annotations

import numpy as np

from repro.factorgraph.graph import FactorGraph, FactorTemplate, Variable
from repro.factorgraph.lbp import (
    LBPMessages,
    LBPResult,
    LBPSettings,
    Schedule,
    ScheduleStep,
)

#: Domain labels must round-trip through JSON unchanged.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_domain(name: str, domain: tuple) -> None:
    for label in domain:
        if not isinstance(label, _SCALAR_TYPES):
            raise ValueError(
                f"variable {name!r} has a non-JSON-scalar domain label "
                f"{label!r} ({type(label).__name__}); such graphs cannot "
                f"be checkpointed"
            )


# ----------------------------------------------------------------------
# FactorGraph
# ----------------------------------------------------------------------
def graph_to_state(graph: FactorGraph) -> dict:
    """Render a factor graph to a JSON-safe payload (exact)."""
    templates = [
        {
            "name": template.name,
            "features": list(template.feature_names),
            "weights": [float(w) for w in template.weights],
        }
        for template in graph.templates.values()
    ]
    variables = []
    for variable in graph.variables.values():
        _check_domain(variable.name, variable.domain)
        variables.append(
            {
                "name": variable.name,
                "domain": list(variable.domain),
                "group": variable.group,
            }
        )
    factors = [
        {
            "name": factor.name,
            "template": factor.template.name,
            "scope": [variable.name for variable in factor.variables],
            "table": factor.feature_table.tolist(),
        }
        for factor in graph.factors.values()
    ]
    return {"templates": templates, "variables": variables, "factors": factors}


def graph_from_state(payload: dict) -> FactorGraph:
    """Inverse of :func:`graph_to_state`."""
    graph = FactorGraph()
    for entry in payload["templates"]:
        graph.add_template(
            FactorTemplate(entry["name"], entry["features"], entry["weights"])
        )
    for entry in payload["variables"]:
        graph.add_variable(
            Variable(entry["name"], tuple(entry["domain"]), group=entry["group"])
        )
    for entry in payload["factors"]:
        graph.add_factor(
            entry["name"],
            graph.templates[entry["template"]],
            entry["scope"],
            np.asarray(entry["table"], dtype=float),
        )
    return graph


# ----------------------------------------------------------------------
# Messages and results
# ----------------------------------------------------------------------
def messages_to_state(messages: LBPMessages) -> dict:
    """Render message tables; keys become ``[from, to, values]`` rows."""
    return {
        "f2v": [
            [factor_name, variable_name, message.tolist()]
            for (factor_name, variable_name), message in messages.f2v.items()
        ],
        "v2f": [
            [variable_name, factor_name, message.tolist()]
            for (variable_name, factor_name), message in messages.v2f.items()
        ],
    }


def messages_from_state(payload: dict) -> LBPMessages:
    """Inverse of :func:`messages_to_state`."""
    return LBPMessages(
        f2v={
            (row[0], row[1]): np.asarray(row[2], dtype=float)
            for row in payload["f2v"]
        },
        v2f={
            (row[0], row[1]): np.asarray(row[2], dtype=float)
            for row in payload["v2f"]
        },
    )


def result_to_state(result: LBPResult) -> dict:
    """Render an :class:`LBPResult` (graph back-reference excluded)."""
    payload = {
        "marginals": {
            name: marginal.tolist() for name, marginal in result.marginals.items()
        },
        "factor_beliefs": {
            name: belief.tolist() for name, belief in result.factor_beliefs.items()
        },
        "iterations": result.iterations,
        "converged": result.converged,
        "residuals": [float(residual) for residual in result.residuals],
        "messages": (
            messages_to_state(result.messages) if result.messages is not None else None
        ),
    }
    return payload


def result_from_state(payload: dict) -> LBPResult:
    """Inverse of :func:`result_to_state`."""
    raw_messages = payload.get("messages")
    return LBPResult(
        marginals={
            name: np.asarray(values, dtype=float)
            for name, values in payload["marginals"].items()
        },
        factor_beliefs={
            name: np.asarray(values, dtype=float)
            for name, values in payload["factor_beliefs"].items()
        },
        iterations=int(payload["iterations"]),
        converged=bool(payload["converged"]),
        residuals=[float(residual) for residual in payload.get("residuals", ())],
        messages=messages_from_state(raw_messages) if raw_messages else None,
    )


# ----------------------------------------------------------------------
# Run parameters
# ----------------------------------------------------------------------
def settings_to_state(settings: LBPSettings) -> dict:
    """Render :class:`LBPSettings`."""
    return {
        "max_iterations": settings.max_iterations,
        "tolerance": settings.tolerance,
        "damping": settings.damping,
    }


def settings_from_state(payload: dict) -> LBPSettings:
    """Inverse of :func:`settings_to_state`."""
    return LBPSettings(
        max_iterations=int(payload["max_iterations"]),
        tolerance=float(payload["tolerance"]),
        damping=float(payload["damping"]),
    )


def schedule_to_state(schedule: Schedule) -> dict:
    """Render a :class:`Schedule`."""
    return {
        "steps": [
            {"kind": step.kind, "names": list(step.names)}
            for step in schedule.steps
        ]
    }


def schedule_from_state(payload: dict) -> Schedule:
    """Inverse of :func:`schedule_to_state`."""
    return Schedule(
        steps=tuple(
            ScheduleStep(kind=entry["kind"], names=tuple(entry["names"]))
            for entry in payload["steps"]
        )
    )
