"""JOCL reproduction: Joint Open Knowledge Base Canonicalization and Linking.

This package is a from-scratch reproduction of the SIGMOD 2021 paper
*Joint Open Knowledge Base Canonicalization and Linking* (Liu, Shen,
Wang, Wang, Yang, Yuan).  It contains:

* the JOCL factor-graph framework itself (:mod:`repro.core`),
* every substrate the paper depends on (curated KB, OKB triple store,
  embeddings, paraphrase DB, AMIE rule mining, KBP-style relation
  categorizer, string similarity, clustering, metrics),
* every baseline system used in the paper's evaluation
  (:mod:`repro.baselines`),
* synthetic dataset generators shaped like ReVerb45K and NYTimes2018
  (:mod:`repro.datasets`), and
* an experiment pipeline (:mod:`repro.pipeline`) used by the benchmark
  harness to regenerate every table and figure of the paper.

Quickstart::

    from repro.datasets import ReVerb45KConfig, generate_reverb45k
    from repro.pipeline import JOCLPipeline

    dataset = generate_reverb45k(ReVerb45KConfig(n_entities=120, seed=7))
    pipeline = JOCLPipeline.from_dataset(dataset)
    result = pipeline.run()
    print(result.np_clusters)       # canonicalization groups
    print(result.entity_links)      # NP -> CKB entity
"""

from repro.version import __version__

__all__ = ["__version__"]
