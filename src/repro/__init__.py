"""JOCL reproduction: Joint Open Knowledge Base Canonicalization and Linking.

This package is a from-scratch reproduction of the SIGMOD 2021 paper
*Joint Open Knowledge Base Canonicalization and Linking* (Liu, Shen,
Wang, Wang, Yang, Yuan).  It contains:

* the service-grade engine API (:mod:`repro.api`) — the supported
  public surface: a long-lived :class:`JOCLEngine` with incremental
  ingest, serving-time ``resolve``/``resolve_many`` and
  JSON-serializable results,
* pluggable execution runtimes (:mod:`repro.runtime`) — serial,
  partitioned and pool-parallel LBP behind one plan/execute/merge
  contract, selected per engine via ``with_runtime(...)``,
* durable checkpoints (:mod:`repro.persist`) — schema-versioned
  :class:`EngineState` snapshots in file-directory or SQLite
  :class:`StateStore` backends, restored warm via
  :meth:`JOCLEngine.load`,
* concurrent serving sessions (:mod:`repro.serving`) —
  :class:`JOCLService` with thread-safe micro-batched ``resolve``,
  serialized writes and ``checkpoint()``/``rollback()`` —
  and :class:`JOCLClusterService`, the same discipline per shard,
* horizontal scale-out (:mod:`repro.cluster`) — a
  :class:`ShardedEngine` owning N engines behind one surface: pluggable
  :class:`ShardRouter` placement, scatter/gather ``resolve``,
  shard-parallel ``ingest``/``run_joint``, corpus-global IDF statistics
  and namespaced cluster checkpoints,
* the JOCL factor-graph framework itself (:mod:`repro.core`),
* every substrate the paper depends on (curated KB, OKB triple store,
  embeddings, paraphrase DB, AMIE rule mining, KBP-style relation
  categorizer, string similarity, clustering, metrics),
* every baseline system used in the paper's evaluation
  (:mod:`repro.baselines`),
* synthetic dataset generators shaped like ReVerb45K and NYTimes2018
  (:mod:`repro.datasets`), and
* the legacy experiment pipeline (:mod:`repro.pipeline`), now a thin
  adapter over the engine, used by the benchmark harness to regenerate
  every table and figure of the paper.

Quickstart::

    from repro import JOCLConfig, JOCLEngine, ParallelRuntime
    from repro.datasets import ReVerb45KConfig, generate_reverb45k

    dataset = generate_reverb45k(ReVerb45KConfig(n_entities=32, seed=7))
    engine = (
        JOCLEngine.builder()
        .with_ckb(dataset.kb)
        .with_anchors(dataset.anchors)
        .with_ppdb(dataset.ppdb)
        .with_config(JOCLConfig(lbp_iterations=10))
        .with_triples(dataset.test_triples)
        .with_runtime(ParallelRuntime(max_workers=4))  # partitioned LBP
        .build()
    )
    report = engine.run_joint()
    print(report.canonicalization.np_clusters)   # canonicalization groups
    print(report.linking.entity_links)           # NP -> CKB entity
    print(report.profile.n_components)           # how inference executed
    engine.ingest(dataset.validation_triples)    # incremental OKB growth
    batch = engine.resolve_many(
        [t.subject for t in dataset.test_triples[:3]]
    )                                            # batched serving
    print([r.target for r in batch])
"""

from repro.api import (
    CanonicalizationResult,
    EngineBuilder,
    EngineReport,
    EngineStats,
    ExecutionProfile,
    JOCLEngine,
    LinkingResult,
    ResolveResult,
)
from repro.cluster import (
    ClusterReport,
    ClusterStats,
    HashShardRouter,
    IngestReport,
    ShardRouter,
    ShardedEngine,
    VocabularyAffinityRouter,
)
from repro.core import JOCL, JOCLConfig, JOCLOutput
from repro.datasets import (
    Dataset,
    NYTimes2018Config,
    ReVerb45KConfig,
    ShardedOKBConfig,
    StreamingIngestConfig,
    generate_nytimes2018,
    generate_reverb45k,
    generate_sharded_reverb45k,
    generate_streaming_ingest,
    shard_partition,
)
from repro.persist import (
    EngineState,
    FileStateStore,
    SQLiteStateStore,
    StateStore,
)
from repro.pipeline import JOCLPipeline, PipelineResult
from repro.runtime import (
    IncrementalRuntime,
    InferenceRuntime,
    ParallelRuntime,
    PartitionedRuntime,
    SerialRuntime,
)
from repro.serving import JOCLClusterService, JOCLService, ServingStats
from repro.version import __version__

__all__ = [
    "CanonicalizationResult",
    "ClusterReport",
    "ClusterStats",
    "Dataset",
    "EngineBuilder",
    "EngineReport",
    "EngineState",
    "EngineStats",
    "ExecutionProfile",
    "FileStateStore",
    "HashShardRouter",
    "IncrementalRuntime",
    "InferenceRuntime",
    "IngestReport",
    "JOCL",
    "JOCLConfig",
    "JOCLClusterService",
    "JOCLEngine",
    "JOCLOutput",
    "JOCLPipeline",
    "JOCLService",
    "LinkingResult",
    "NYTimes2018Config",
    "ParallelRuntime",
    "PartitionedRuntime",
    "PipelineResult",
    "ReVerb45KConfig",
    "ResolveResult",
    "SQLiteStateStore",
    "SerialRuntime",
    "ServingStats",
    "ShardRouter",
    "ShardedEngine",
    "ShardedOKBConfig",
    "StateStore",
    "StreamingIngestConfig",
    "VocabularyAffinityRouter",
    "__version__",
    "generate_nytimes2018",
    "generate_reverb45k",
    "generate_sharded_reverb45k",
    "generate_streaming_ingest",
    "shard_partition",
]
