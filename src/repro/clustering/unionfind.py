"""Disjoint-set (union-find) with path compression and union by size."""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint-set over arbitrary hashable items.

    Items are added lazily on first use; :meth:`find` on an unseen item
    makes it its own singleton set.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Ensure ``item`` is tracked (as a singleton if unseen)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: T) -> T:
        """Return the representative of ``item``'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: T, second: T) -> T:
        """Merge the sets of ``first`` and ``second``; return the new root."""
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return root_a
        # Union by size: attach the smaller tree under the larger.
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def connected(self, first: T, second: T) -> bool:
        """Whether the two items are currently in the same set."""
        return self.find(first) == self.find(second)

    def groups(self) -> list[set[T]]:
        """Materialize all current sets (singletons included)."""
        by_root: dict[T, set[T]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: T) -> bool:
        return item in self._parent
