"""The :class:`Clustering` container: a partition of hashable items.

This is the lingua franca between canonicalization systems and the
macro/micro/pairwise metrics: a clustering is a set of disjoint groups
covering a set of items, with O(1) "which cluster is this item in?"
lookup.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

from repro.clustering.unionfind import UnionFind

T = TypeVar("T", bound=Hashable)


class Clustering:
    """An immutable partition of items into disjoint clusters.

    Parameters
    ----------
    groups:
        Iterable of iterables; each inner iterable is one cluster.  Items
        must not repeat across (or within) clusters.
    """

    def __init__(self, groups: Iterable[Iterable[T]]) -> None:
        self._groups: list[frozenset[T]] = []
        self._cluster_of: dict[T, int] = {}
        for group in groups:
            members = frozenset(group)
            if not members:
                continue
            index = len(self._groups)
            for item in members:
                if item in self._cluster_of:
                    raise ValueError(f"item {item!r} appears in two clusters")
                self._cluster_of[item] = index
            self._groups.append(members)

    @classmethod
    def from_pairs(
        cls, items: Iterable[T], merged_pairs: Iterable[tuple[T, T]]
    ) -> Clustering:
        """Build a clustering as connected components of merge decisions.

        ``items`` fixes the universe (unmerged items become singletons);
        each pair in ``merged_pairs`` joins two items.
        """
        finder: UnionFind = UnionFind(items)
        for first, second in merged_pairs:
            finder.union(first, second)
        return cls(finder.groups())

    @classmethod
    def from_assignment(cls, assignment: dict[T, Hashable]) -> Clustering:
        """Build a clustering from an item -> label mapping."""
        by_label: dict[Hashable, set[T]] = {}
        for item, label in assignment.items():
            by_label.setdefault(label, set()).add(item)
        return cls(by_label.values())

    @property
    def groups(self) -> list[frozenset[T]]:
        """The clusters, as a list of frozensets."""
        return list(self._groups)

    @property
    def items(self) -> frozenset[T]:
        """All items covered by the clustering."""
        return frozenset(self._cluster_of)

    def cluster_of(self, item: T) -> frozenset[T]:
        """The cluster containing ``item`` (KeyError if absent)."""
        return self._groups[self._cluster_of[item]]

    def same_cluster(self, first: T, second: T) -> bool:
        """Whether both items are present and share a cluster."""
        index_a = self._cluster_of.get(first)
        index_b = self._cluster_of.get(second)
        return index_a is not None and index_a == index_b

    def restricted_to(self, items: Iterable[T]) -> Clustering:
        """Project the clustering onto a subset of items.

        Used when gold labels exist only for a sample (the NYTimes2018
        protocol in the paper: 100 manually labeled groups).
        """
        keep = set(items)
        projected = (group & keep for group in self._groups)
        return Clustering(group for group in projected if group)

    def non_singletons(self) -> list[frozenset[T]]:
        """Clusters with at least two members."""
        return [group for group in self._groups if len(group) > 1]

    def merged_pairs(self) -> set[frozenset[T]]:
        """All unordered within-cluster pairs (for pairwise metrics)."""
        pairs: set[frozenset[T]] = set()
        for group in self._groups:
            members = sorted(group, key=repr)
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    pairs.add(frozenset((first, second)))
        return pairs

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, item: T) -> bool:
        return item in self._cluster_of

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return set(self._groups) == set(other._groups)

    def __hash__(self) -> int:
        return hash(frozenset(self._groups))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clustering(n_clusters={len(self)}, n_items={len(self._cluster_of)})"
