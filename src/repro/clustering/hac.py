"""Hierarchical agglomerative clustering over an arbitrary similarity.

The canonicalization baselines of Galárraga et al. (2014), CESI and SIST
all cluster with HAC over a pairwise similarity and stop at a threshold.
This implementation:

* takes any ``similarity(a, b) -> float`` callable,
* supports single / complete / average linkage,
* merges greedily while the best pair similarity >= ``threshold``.

Complexity is O(n^2 log n) with a lazily-invalidated heap.  Cluster-pair
linkage scores are maintained as O(1)-combinable aggregates (count, sum,
min, max over the member-pair similarities), so re-checking a popped
candidate and re-scoring after a merge never re-enumerates member pairs
— without the aggregates, average linkage degenerated to ~O(n^3) because
every heap pop recomputed ``cluster_sim`` over all member pairs.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections.abc import Callable, Hashable, Sequence
from typing import TypeVar

from repro.clustering.clusters import Clustering

T = TypeVar("T", bound=Hashable)


class Linkage(enum.Enum):
    """How to score the similarity between two clusters."""

    SINGLE = "single"
    COMPLETE = "complete"
    AVERAGE = "average"


def hac_cluster(
    items: Sequence[T],
    similarity: Callable[[T, T], float],
    threshold: float,
    linkage: Linkage = Linkage.AVERAGE,
) -> Clustering:
    """Agglomerate ``items`` until no cluster pair reaches ``threshold``.

    Parameters
    ----------
    items:
        Items to cluster; duplicates are collapsed.
    similarity:
        Symmetric similarity in any range; compared against ``threshold``.
    threshold:
        Minimum cluster-pair similarity required to merge.
    linkage:
        Cluster-pair score: max (single), min (complete) or mean
        (average) of the member-pair similarities.
    """
    unique_items = list(dict.fromkeys(items))
    n = len(unique_items)
    if n <= 1:
        return Clustering([unique_items] if unique_items else [])

    clusters: dict[int, list[int]] = {i: [i] for i in range(n)}
    next_id = n

    # Cluster-pair aggregates over the member-pair similarities, keyed
    # by the (unordered) cluster-id pair.  Merging clusters a and b
    # combines the (a, o) and (b, o) aggregates in O(1) per surviving
    # cluster o; every linkage score reads off the aggregate.
    def pair_key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    # aggregate = (count, total, minimum, maximum) of member-pair sims.
    aggregates: dict[tuple[int, int], tuple[int, float, float, float]] = {}
    for i, j in itertools.combinations(range(n), 2):
        score = similarity(unique_items[i], unique_items[j])
        aggregates[(i, j)] = (1, score, score, score)

    def linkage_score(aggregate: tuple[int, float, float, float]) -> float:
        count, total, minimum, maximum = aggregate
        if linkage is Linkage.SINGLE:
            return maximum
        if linkage is Linkage.COMPLETE:
            return minimum
        return total / count

    # Max-heap of candidate merges; entries go stale when a cluster id
    # disappears, so validity is re-checked on pop.
    heap: list[tuple[float, int, int]] = []
    for a, b in itertools.combinations(range(n), 2):
        score = linkage_score(aggregates[(a, b)])
        if score >= threshold:
            heapq.heappush(heap, (-score, a, b))

    while heap:
        neg_score, a, b = heapq.heappop(heap)
        if a not in clusters or b not in clusters:
            continue  # stale entry
        score = linkage_score(aggregates[pair_key(a, b)])
        if score < threshold:
            continue  # stale score (cluster grew, linkage dropped)
        merged = clusters.pop(a) + clusters.pop(b)
        aggregates.pop(pair_key(a, b))
        clusters[next_id] = merged
        for other_id in clusters:
            if other_id == next_id:
                continue
            count_a, total_a, min_a, max_a = aggregates.pop(pair_key(a, other_id))
            count_b, total_b, min_b, max_b = aggregates.pop(pair_key(b, other_id))
            combined = (
                count_a + count_b,
                total_a + total_b,
                min(min_a, min_b),
                max(max_a, max_b),
            )
            aggregates[pair_key(next_id, other_id)] = combined
            pair_score = linkage_score(combined)
            if pair_score >= threshold:
                heapq.heappush(
                    heap, (-pair_score, min(next_id, other_id), max(next_id, other_id))
                )
        next_id += 1

    return Clustering(
        [unique_items[i] for i in members] for members in clusters.values()
    )
