"""Hierarchical agglomerative clustering over an arbitrary similarity.

The canonicalization baselines of Galárraga et al. (2014), CESI and SIST
all cluster with HAC over a pairwise similarity and stop at a threshold.
This implementation:

* takes any ``similarity(a, b) -> float`` callable,
* supports single / complete / average linkage,
* merges greedily while the best pair similarity >= ``threshold``.

Complexity is O(n^2 log n) with a lazily-invalidated heap, which is fine
for the phrase-set sizes the benchmarks use (hundreds to a few thousand
items).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections.abc import Callable, Hashable, Sequence
from typing import TypeVar

from repro.clustering.clusters import Clustering

T = TypeVar("T", bound=Hashable)


class Linkage(enum.Enum):
    """How to score the similarity between two clusters."""

    SINGLE = "single"
    COMPLETE = "complete"
    AVERAGE = "average"


def hac_cluster(
    items: Sequence[T],
    similarity: Callable[[T, T], float],
    threshold: float,
    linkage: Linkage = Linkage.AVERAGE,
) -> Clustering:
    """Agglomerate ``items`` until no cluster pair reaches ``threshold``.

    Parameters
    ----------
    items:
        Items to cluster; duplicates are collapsed.
    similarity:
        Symmetric similarity in any range; compared against ``threshold``.
    threshold:
        Minimum cluster-pair similarity required to merge.
    linkage:
        Cluster-pair score: max (single), min (complete) or mean
        (average) of the member-pair similarities.
    """
    unique_items = list(dict.fromkeys(items))
    n = len(unique_items)
    if n <= 1:
        return Clustering([unique_items] if unique_items else [])

    # Pairwise similarities between original items, computed once.
    sim = {}
    for i, j in itertools.combinations(range(n), 2):
        sim[(i, j)] = similarity(unique_items[i], unique_items[j])

    def item_sim(i: int, j: int) -> float:
        if i == j:
            raise ValueError("self-similarity requested")
        return sim[(i, j)] if i < j else sim[(j, i)]

    clusters: dict[int, list[int]] = {i: [i] for i in range(n)}
    next_id = n

    def cluster_sim(members_a: list[int], members_b: list[int]) -> float:
        scores = [item_sim(i, j) for i in members_a for j in members_b]
        if linkage is Linkage.SINGLE:
            return max(scores)
        if linkage is Linkage.COMPLETE:
            return min(scores)
        return sum(scores) / len(scores)

    # Max-heap of candidate merges; entries go stale when a cluster id
    # disappears, so validity is re-checked on pop.
    heap: list[tuple[float, int, int]] = []
    for a, b in itertools.combinations(range(n), 2):
        score = cluster_sim(clusters[a], clusters[b])
        if score >= threshold:
            heapq.heappush(heap, (-score, a, b))

    while heap:
        neg_score, a, b = heapq.heappop(heap)
        if a not in clusters or b not in clusters:
            continue  # stale entry
        score = cluster_sim(clusters[a], clusters[b])
        if score < threshold:
            continue  # stale score (cluster grew, linkage dropped)
        merged = clusters.pop(a) + clusters.pop(b)
        clusters[next_id] = merged
        for other_id, other_members in clusters.items():
            if other_id == next_id:
                continue
            pair_score = cluster_sim(merged, other_members)
            if pair_score >= threshold:
                heapq.heappush(
                    heap, (-pair_score, min(next_id, other_id), max(next_id, other_id))
                )
        next_id += 1

    return Clustering(
        [unique_items[i] for i in members] for members in clusters.values()
    )
