"""Clustering substrate: union-find, cluster containers, and HAC.

Every canonicalization system in this package (JOCL itself and all the
baselines) produces a :class:`Clustering`, and the evaluation metrics in
:mod:`repro.metrics` consume one.  Hierarchical agglomerative clustering
(:func:`hac_cluster`) is the clustering engine used by the Galárraga et
al. baselines, CESI, and SIST.
"""

from repro.clustering.clusters import Clustering
from repro.clustering.hac import Linkage, hac_cluster
from repro.clustering.unionfind import UnionFind

__all__ = ["Clustering", "Linkage", "UnionFind", "hac_cluster"]
