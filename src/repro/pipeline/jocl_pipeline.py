"""The dataset-to-metrics pipeline for JOCL.

Reproduces the paper's protocol (Section 4.1): learn template weights
on the validation split (when one exists), infer on the test split,
evaluate canonicalization (macro/micro/pairwise/average F1) and linking
(accuracy) against the dataset gold.

.. deprecated::
    :class:`JOCLPipeline` is now a thin benchmark-oriented adapter over
    :class:`repro.api.JOCLEngine`, which is the supported public
    surface (builder construction, incremental ingest, serving-time
    ``resolve``, JSON-serializable results).  The pipeline keeps its
    historical signature and behavior for existing experiment code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.engine import JOCLEngine
from repro.api.errors import TrainingError
from repro.clustering.clusters import Clustering
from repro.core.config import JOCLConfig
from repro.core.inference import JOCLOutput
from repro.core.learning import GoldAnnotations
from repro.core.model import JOCL
from repro.core.side_info import SideInformation
from repro.datasets.base import Dataset
from repro.metrics.canonicalization import CanonicalizationReport, evaluate_clustering
from repro.metrics.linking import linking_accuracy
from repro.runtime.base import InferenceRuntime


@dataclass
class PipelineResult:
    """Everything one pipeline run produces."""

    output: JOCLOutput
    np_report: CanonicalizationReport
    rp_report: CanonicalizationReport
    entity_accuracy: float
    relation_accuracy: float
    trained: bool

    def summary(self) -> dict[str, float]:
        """Flat metric dict for table rows / logging."""
        return {
            "np_average_f1": self.np_report.average_f1,
            "rp_average_f1": self.rp_report.average_f1,
            "entity_accuracy": self.entity_accuracy,
            "relation_accuracy": self.relation_accuracy,
        }


@dataclass
class JOCLPipeline:
    """Run JOCL on a dataset end to end."""

    dataset: Dataset
    config: JOCLConfig = field(default_factory=JOCLConfig)
    #: Side information for the test split (built lazily if None).
    side: SideInformation | None = None
    #: Side information for the validation split (built lazily if None).
    validation_side: SideInformation | None = None
    #: Train on the validation split before inferring.
    train: bool = True
    embedding: str = "hashed"
    #: Execution runtime for inference (``None`` = the engine default,
    #: whole-graph serial LBP).
    runtime: InferenceRuntime | None = None

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        config: JOCLConfig | None = None,
        train: bool = True,
        embedding: str = "hashed",
        runtime: InferenceRuntime | None = None,
    ) -> JOCLPipeline:
        """Standard construction used by examples and benchmarks."""
        return cls(
            dataset=dataset,
            config=config or JOCLConfig(),
            train=train,
            embedding=embedding,
            runtime=runtime,
        )

    def _ensure_sides(self) -> tuple[SideInformation, SideInformation | None]:
        if self.side is None:
            self.side = self.dataset.side_information(
                "test", embedding=self.embedding, max_candidates=self.config.max_candidates
            )
        validation = self.validation_side
        if validation is None and self.train and self.dataset.validation_triples:
            validation = self.dataset.side_information(
                "validation",
                embedding=self.embedding,
                max_candidates=self.config.max_candidates,
            )
            self.validation_side = validation
        return self.side, validation

    def run(self, model: JOCL | None = None) -> PipelineResult:
        """Train (optional) + infer + evaluate (adapter over the engine)."""
        side, validation_side = self._ensure_sides()
        builder = JOCLEngine.builder().with_side_information(side)
        if model is not None:
            builder = builder.with_model(model)
        else:
            builder = builder.with_config(self.config)
        if self.runtime is not None:
            builder = builder.with_runtime(self.runtime)
        engine = builder.build()
        trained = False
        if self.train and validation_side is not None:
            gold = GoldAnnotations.from_triples(self.dataset.validation_triples)
            if gold.subject_entity or gold.relation or gold.object_entity:
                try:
                    engine.fit(gold, side=validation_side)
                    trained = True
                except TrainingError:
                    # No gold label maps onto the validation graph (e.g. a
                    # canonicalization-only variant whose admissible pairs
                    # carry no annotations); fall back to untrained
                    # inference rather than failing the run.
                    trained = False
        if len(side.okb) == 0:
            # Historical behavior: an empty test split decodes to empty
            # clusters/links instead of the engine's EngineStateError.
            # There is nothing to infer, so build the empty output
            # directly rather than running a degenerate LBP pass.
            # (LBP on an empty graph historically reported one converged
            # iteration; keep that shape for downstream convergence checks.)
            output = JOCLOutput(
                clusters={kind: Clustering([]) for kind in ("S", "P", "O")},
                links={kind: {} for kind in ("S", "P", "O")},
                iterations=1,
                converged=True,
            )
        else:
            output = engine.run_joint().as_output()
        return self.evaluate(output, trained=trained)

    def evaluate(self, output: JOCLOutput, trained: bool = False) -> PipelineResult:
        """Score a JOCL output against the dataset gold."""
        gold = self.dataset.gold
        if gold is None:
            raise ValueError("dataset carries no evaluation gold")
        return PipelineResult(
            output=output,
            np_report=evaluate_clustering(output.np_clusters, gold.np_clusters),
            rp_report=evaluate_clustering(output.rp_clusters, gold.rp_clusters),
            entity_accuracy=linking_accuracy(output.entity_links, gold.entity_links),
            relation_accuracy=linking_accuracy(
                output.relation_links, gold.relation_links
            ),
            trained=trained,
        )
