"""End-to-end experiment pipeline (legacy adapter).

* :class:`JOCLPipeline` — dataset in, trained-and-decoded
  :class:`~repro.core.inference.JOCLOutput` plus metrics out; now a
  thin back-compat adapter over :class:`repro.api.JOCLEngine`, which is
  the supported public surface for new code.
* :mod:`~repro.pipeline.experiment` — helpers that run whole
  baseline+JOCL comparisons and format them as the paper's tables.
"""

from repro.pipeline.experiment import (
    CanonicalizationRow,
    LinkingRow,
    format_table,
    run_canonicalization_systems,
    run_linking_systems,
)
from repro.pipeline.jocl_pipeline import JOCLPipeline, PipelineResult

__all__ = [
    "CanonicalizationRow",
    "JOCLPipeline",
    "LinkingRow",
    "PipelineResult",
    "format_table",
    "run_canonicalization_systems",
    "run_linking_systems",
]
