"""Experiment harness: run system line-ups and print paper-style tables.

The benchmark files call :func:`run_canonicalization_systems` /
:func:`run_linking_systems` with the same side information for every
system and collect one row per system, then :func:`format_table`
renders the rows the way the paper's tables read.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.baselines.base import CanonicalizationBaseline, LinkingBaseline
from repro.clustering.clusters import Clustering
from repro.core.side_info import SideInformation
from repro.metrics.canonicalization import evaluate_clustering
from repro.metrics.linking import linking_accuracy


@dataclass(frozen=True)
class CanonicalizationRow:
    """One table row for a canonicalization system."""

    system: str
    macro_f1: float
    micro_f1: float
    pairwise_f1: float
    average_f1: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "system": self.system,
            "macro_f1": self.macro_f1,
            "micro_f1": self.micro_f1,
            "pairwise_f1": self.pairwise_f1,
            "average_f1": self.average_f1,
        }


@dataclass(frozen=True)
class LinkingRow:
    """One table row for a linking system."""

    system: str
    accuracy: float

    def as_dict(self) -> dict[str, float | str]:
        return {"system": self.system, "accuracy": self.accuracy}


def score_clustering(
    system: str, predicted: Clustering, gold: Clustering
) -> CanonicalizationRow:
    """Evaluate one predicted clustering into a table row."""
    report = evaluate_clustering(predicted, gold)
    return CanonicalizationRow(
        system=system,
        macro_f1=report.macro.f1,
        micro_f1=report.micro.f1,
        pairwise_f1=report.pairwise.f1,
        average_f1=report.average_f1,
    )


def run_canonicalization_systems(
    systems: Sequence[CanonicalizationBaseline],
    side: SideInformation,
    gold: Clustering,
    kind: str,
) -> list[CanonicalizationRow]:
    """Run each baseline on one slot kind and score it."""
    rows = []
    for system in systems:
        predicted = system.cluster(side, kind)
        rows.append(score_clustering(system.name, predicted, gold))
    return rows


def run_linking_systems(
    systems: Sequence[LinkingBaseline],
    side: SideInformation,
    gold_links: Mapping[str, str],
    task: str = "entity",
) -> list[LinkingRow]:
    """Run each linking baseline and score accuracy on one task.

    ``task``: ``"entity"`` scores subject links, ``"relation"`` scores
    relation links (systems that do not produce relation links are
    skipped).
    """
    rows = []
    for system in systems:
        if task == "relation" and not system.links_relations:
            continue
        result = system.link(side)
        predicted = (
            result.relation_links if task == "relation" else result.entity_links
        )
        rows.append(
            LinkingRow(system=system.name, accuracy=linking_accuracy(predicted, gold_links))
        )
    return rows


def format_table(
    title: str,
    rows: Iterable[CanonicalizationRow | LinkingRow],
    highlight: str | None = "JOCL",
) -> str:
    """Render rows as a fixed-width text table (paper layout)."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].as_dict().keys())
    widths = {column: max(len(column), 12) for column in columns}
    for row in rows:
        for column, value in row.as_dict().items():
            text = _cell(value)
            widths[column] = max(widths[column], len(text))
    lines = [title]
    lines.append("  ".join(column.ljust(widths[column]) for column in columns))
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        cells = []
        for column in columns:
            text = _cell(row.as_dict()[column])
            if highlight and column == "system" and text == highlight:
                text = f"*{text}*"
            cells.append(text.ljust(widths[column]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _cell(value: float | str) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
