"""The :class:`JOCLService` session layer; see the package docstring.

Concurrency design
------------------

Two locks and a queue:

* a reader/writer lock (writer preference) — ``resolve`` /
  ``resolve_many`` / ``run_joint`` hold it shared, ``ingest`` / ``fit``
  / ``checkpoint`` and the ``rollback`` swap hold it exclusively;
* a leader lock for micro-batching: every ``resolve`` call enqueues its
  request, then competes to become the *leader*; the leader drains up
  to ``max_batch_size`` queued requests and serves the whole batch with
  **one** decode/side-information lookup, so N threads bursting at an
  engine whose cache was just invalidated pay one inference, one
  dictionary walk — not N.  Followers wake up with their answer already
  filled in.

The leader optionally *waits* before draining: with a non-zero
``batch_window_ms`` it holds the queue open until either
``max_batch_size`` requests are pending or the window expires, so
concurrent arrivals actually coalesce instead of being served in
batches of one (``BENCH_serving.json`` documented the regression: with
an eager leader only 66/720 requests ever shared a batch).  Within a
batch, duplicate ``(mention, kind)`` requests are answered by **one**
shared resolve — identical inputs against an identical engine state
produce the identical (frozen) answer, so hot-key traffic pays for its
unique mentions only.

No background threads: batching is caller-driven (leader/follower), so
there is nothing to start, stop, or leak — a service is ready on
construction and needs no shutdown.

Failure semantics match the engine: per-mention failures
(:class:`~repro.api.errors.UnknownMentionError`) fail only that caller;
engine-level failures while decoding (e.g. an empty OKB) fail every
request in the batch with the same error.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

from repro.api.engine import JOCLEngine
from repro.api.errors import CheckpointError, InvalidRequestError
from repro.api.results import EngineReport, EngineStats, ResolveResult
from repro.okb.triples import OIETriple
from repro.persist.store import StateStore


class _ReadWriteLock:
    """A reader/writer lock with writer preference.

    Any number of readers share the lock; a writer waits for active
    readers to drain and excludes everyone.  Waiting writers block *new*
    readers, so a steady read load cannot starve ingest.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                # Balanced even when the wait is interrupted
                # (KeyboardInterrupt): a leaked waiting-writer count
                # would block every future reader forever.
                self._writers_waiting -= 1
                self._cond.notify_all()
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


def latency_percentile(sorted_samples: Sequence[float], quantile: float) -> float:
    """The ``quantile`` (0..1) of pre-sorted latency samples, in the
    samples' own unit, by the nearest-rank method (the convention load
    harnesses report: p99 of 100 samples is the 99th smallest, not an
    interpolation past the data).  Returns 0.0 on no samples."""
    if not sorted_samples:
        return 0.0
    if not 0.0 <= quantile <= 1.0:
        raise InvalidRequestError(f"quantile must be within [0, 1], got {quantile}")
    rank = max(1, math.ceil(quantile * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


class _PendingResolve:
    """One enqueued ``resolve`` request and its eventual outcome."""

    __slots__ = ("mention", "kind", "event", "result", "error")

    def __init__(self, mention: str, kind: str | None) -> None:
        self.mention = mention
        self.kind = kind
        self.event = threading.Event()
        self.result: ResolveResult | None = None
        self.error: BaseException | None = None


@dataclass(frozen=True)
class ServingStats:
    """Micro-batching telemetry of one :class:`JOCLService`."""

    #: ``resolve`` requests served.
    requests: int = 0
    #: Decode batches executed by leaders.
    batches: int = 0
    #: Requests that shared a batch with at least one other request.
    coalesced_requests: int = 0
    #: Requests answered by a resolve computed for an identical
    #: ``(mention, kind)`` request in the same batch (hot-key sharing);
    #: always <= ``coalesced_requests``.
    deduplicated_requests: int = 0
    #: Largest batch observed.
    max_batch: int = 0
    #: Serialized write operations (``ingest`` + ``fit``).
    writes: int = 0
    #: Checkpoints taken.
    checkpoints: int = 0
    #: Rollback swaps performed.
    rollbacks: int = 0
    #: ``resolve`` requests currently queued (gauge, sampled at the
    #: moment :meth:`JOCLService.serving_stats` ran).
    queue_depth: int = 0
    #: Largest queue depth ever observed at enqueue time.
    max_queue_depth: int = 0
    #: How many of the most recent ``resolve`` calls the latency
    #: percentiles below summarize (bounded reservoir).
    latency_samples: int = 0
    #: Median / tail ``resolve`` latency in milliseconds, enqueue to
    #: answer (includes the batching-window wait); 0.0 until sampled.
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0


class JOCLService:
    """A concurrent, durable serving session over one engine.

    Parameters
    ----------
    engine:
        The engine to serve.  The service *owns* it: touch it directly
        only when no requests are in flight.
    store:
        Default :class:`~repro.persist.StateStore` for
        :meth:`checkpoint` / :meth:`rollback` (both also accept one per
        call).
    max_batch_size:
        Cap on how many queued ``resolve`` requests one leader serves
        in a single decode pass.
    batch_window_ms:
        How long a leader holds the queue open waiting for it to fill
        before serving (0, the default, keeps the historical eager
        drain).  A few milliseconds under concurrent load turns
        batches-of-one into full batches: the window closes early the
        moment ``max_batch_size`` requests are pending, so saturated
        traffic never waits the full window, and a lone request pays at
        most the window in extra latency.

    Every answer is byte-identical to what a single-threaded loop over
    :meth:`repro.api.JOCLEngine.resolve` would return — batching,
    windowing, in-batch deduplication and concurrency change
    scheduling, never results.

    Example::

        service = JOCLService(engine, store=store)
        service.resolve("university of maryland")   # thread-safe
        service.ingest(arrival_batch)               # excludes readers
        snapshot = service.checkpoint()
        service.rollback(snapshot)                  # zero-downtime swap
    """

    #: Size of the latency reservoir behind the percentile fields of
    #: :class:`ServingStats` — the most recent N ``resolve`` latencies.
    LATENCY_RESERVOIR = 4096

    def __init__(
        self,
        engine: JOCLEngine,
        store: StateStore | None = None,
        max_batch_size: int = 64,
        batch_window_ms: float = 0.0,
    ) -> None:
        if max_batch_size < 1:
            raise InvalidRequestError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if batch_window_ms < 0:
            raise InvalidRequestError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        self._engine = engine
        self._store = store
        self._max_batch = max_batch_size
        self._window_s = batch_window_ms / 1000.0
        self._rw = _ReadWriteLock()
        self._leader_lock = threading.Lock()
        # Guards the request queue; leaders wait on it for the batching
        # window, enqueuers notify it.
        self._queue_cond = threading.Condition()
        self._pending: deque[_PendingResolve] = deque()
        self._max_queue_depth = 0
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._coalesced = 0
        self._deduplicated = 0
        self._max_batch_seen = 0
        self._writes = 0
        self._checkpoints = 0
        self._rollbacks = 0
        self._latencies: deque[float] = deque(maxlen=self.LATENCY_RESERVOIR)

    @property
    def engine(self) -> JOCLEngine:
        """The engine currently serving (swapped by :meth:`rollback`)."""
        return self._engine

    @contextmanager
    def exclusive(self):
        """Hold the session's writer lock around a custom critical section.

        Yields the served engine with every reader and writer excluded —
        the escape hatch for multi-step operations that must observe (or
        mutate) a quiescent engine, e.g. a cluster-wide checkpoint
        taking a consistent cut across many shard services
        (:meth:`repro.serving.JOCLClusterService.save`).

        Example::

            with service.exclusive() as engine:
                snapshot = engine.save(store)
        """
        with self._rw.write():
            yield self._engine

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def resolve(self, mention: str, kind: str | None = None) -> ResolveResult:
        """Thread-safe :meth:`repro.api.JOCLEngine.resolve`.

        Concurrent callers are transparently coalesced into shared
        decode batches (see the module docstring); the answer is the
        one a serial ``engine.resolve(mention, kind)`` would give.
        """
        start = time.perf_counter()
        entry = _PendingResolve(mention, kind)
        with self._queue_cond:
            self._pending.append(entry)
            self._max_queue_depth = max(self._max_queue_depth, len(self._pending))
            self._queue_cond.notify_all()
        # Leader/follower: whoever gets the leader lock serves a batch
        # from the queue head; FIFO order bounds how often a caller can
        # find its own entry still queued afterwards.
        while not entry.event.is_set():
            with self._leader_lock:
                if not entry.event.is_set():
                    self._serve_one_batch()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        with self._stats_lock:
            self._latencies.append(elapsed_ms)
        if entry.error is not None:
            raise entry.error
        assert entry.result is not None
        return entry.result

    def _serve_one_batch(self) -> None:
        """Leader body: hold the queue open for the batching window,
        drain up to ``max_batch_size`` requests, serve them against one
        shared decoding (one resolve per distinct mention)."""
        deadline = time.monotonic() + self._window_s
        with self._queue_cond:
            while 0 < len(self._pending) < self._max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._queue_cond.wait(remaining)
            batch = [
                self._pending.popleft()
                for _ in range(min(len(self._pending), self._max_batch))
            ]
        if not batch:
            return
        try:
            # One resolve per distinct (mention, kind): duplicates in
            # the same batch share the frozen answer object.
            groups: dict[tuple[str, str | None], list[_PendingResolve]] = {}
            for entry in batch:
                groups.setdefault((entry.mention, entry.kind), []).append(entry)
            with self._stats_lock:
                self._requests += len(batch)
                self._batches += 1
                if len(batch) > 1:
                    self._coalesced += len(batch)
                self._deduplicated += len(batch) - len(groups)
                self._max_batch_seen = max(self._max_batch_seen, len(batch))
            with self._rw.read():
                engine = self._engine
                try:
                    output = engine._decoded()
                    generator = engine.side_information().candidates
                except BaseException as error:
                    for entry in batch:
                        entry.error = error
                        entry.event.set()
                    return
                for (mention, kind), entries in groups.items():
                    try:
                        result = engine._resolve_one(
                            output, generator, mention, kind
                        )
                    except BaseException as error:
                        for entry in entries:
                            entry.error = error
                            entry.event.set()
                        continue
                    for entry in entries:
                        entry.result = result
                        entry.event.set()
        finally:
            # The drained entries left the queue; if anything above was
            # interrupted (KeyboardInterrupt while waiting out a writer,
            # for instance) their followers would otherwise spin forever
            # on an event nobody will set.
            for entry in batch:
                if not entry.event.is_set():
                    if entry.error is None and entry.result is None:
                        entry.error = RuntimeError(
                            "resolve batch aborted before this request "
                            "was served"
                        )
                    entry.event.set()

    def resolve_many(
        self, mentions: Iterable[str], kind: str | None = None
    ) -> list[ResolveResult]:
        """Thread-safe :meth:`repro.api.JOCLEngine.resolve_many` (an
        explicit batch bypasses the coalescing queue — it already *is*
        one)."""
        with self._rw.read():
            return self._engine.resolve_many(mentions, kind)

    def run_joint(self) -> EngineReport:
        """Thread-safe :meth:`repro.api.JOCLEngine.run_joint`."""
        with self._rw.read():
            return self._engine.run_joint()

    def stats(self) -> EngineStats:
        """Current engine stats (consistent snapshot)."""
        with self._rw.read():
            return self._engine.stats()

    def last_profile(self):
        """The engine's most recent :class:`ExecutionProfile`."""
        with self._rw.read():
            return self._engine.last_profile()

    def serving_stats(self) -> ServingStats:
        """Micro-batching, latency-percentile and session telemetry."""
        with self._queue_cond:
            queue_depth = len(self._pending)
            max_queue_depth = self._max_queue_depth
        with self._stats_lock:
            samples = sorted(self._latencies)
            return ServingStats(
                requests=self._requests,
                batches=self._batches,
                coalesced_requests=self._coalesced,
                deduplicated_requests=self._deduplicated,
                max_batch=self._max_batch_seen,
                writes=self._writes,
                checkpoints=self._checkpoints,
                rollbacks=self._rollbacks,
                queue_depth=queue_depth,
                max_queue_depth=max_queue_depth,
                latency_samples=len(samples),
                p50_ms=latency_percentile(samples, 0.50),
                p95_ms=latency_percentile(samples, 0.95),
                p99_ms=latency_percentile(samples, 0.99),
            )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def ingest(self, triples: Iterable[OIETriple]) -> int:
        """Serialized :meth:`repro.api.JOCLEngine.ingest`: excludes all
        readers, so no request observes a half-extended OKB."""
        batch = list(triples)
        with self._rw.write():
            count = self._engine.ingest(batch)
        with self._stats_lock:
            self._writes += 1
        return count

    def fit(self, gold, side=None):
        """Serialized :meth:`repro.api.JOCLEngine.fit`."""
        with self._rw.write():
            history = self._engine.fit(gold, side)
        with self._stats_lock:
            self._writes += 1
        return history

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _require_store(self, store: StateStore | None) -> StateStore:
        store = store or self._store
        if store is None:
            raise CheckpointError(
                "this service has no state store; pass one to the "
                "constructor or to checkpoint()/rollback() directly"
            )
        return store

    def checkpoint(self, store: StateStore | None = None) -> str:
        """Snapshot the engine into the store; returns the snapshot id.

        Runs as a write (the snapshot folds pending lazy state), so the
        captured checkpoint is a consistent point between requests.
        """
        store = self._require_store(store)
        with self._rw.write():
            snapshot = self._engine.save(store)
        with self._stats_lock:
            self._checkpoints += 1
        return snapshot

    def rollback(
        self, snapshot: str | None = None, store: StateStore | None = None
    ) -> str:
        """Swap serving back to a checkpoint; returns the snapshot id.

        Zero-downtime: the replacement engine is restored *outside* the
        session locks — readers keep being answered by the current
        engine for the whole load — and swapped in atomically at the
        end.  ``snapshot`` defaults to the store's *current* checkpoint
        (what ``load_state(None)`` reads).
        """
        store = self._require_store(store)
        if snapshot is None:
            # The store's notion of current, not snapshots()[-1]: a save
            # that failed before committing may have left a newer,
            # never-current snapshot behind.
            snapshot = store.current()
            if snapshot is None:
                raise CheckpointError("state store holds no checkpoint yet")
        engine = JOCLEngine.load(store, snapshot)
        with self._rw.write():
            self._engine = engine
        with self._stats_lock:
            self._rollbacks += 1
        return snapshot
