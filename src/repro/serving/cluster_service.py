"""The :class:`JOCLClusterService`: concurrent sessions over a cluster.

One :class:`~repro.serving.service.JOCLService` per shard, one façade.
Each shard keeps its *own* reader/writer lock and micro-batching queue,
so the session discipline is per-shard: a reader resolving against
shard A never waits for an ingest writing shard B, and concurrent
``resolve`` bursts coalesce into shared decode batches *per shard*.
There is no cluster-global lock on the request path at all — the only
cross-shard exclusion is :meth:`JOCLClusterService.save`, which takes
every shard's writer lock (in shard order, so concurrent savers cannot
deadlock) to cut a consistent cluster-wide checkpoint.

Routing happens outside the locks: the router reads shard vocabularies
(mutated only under a shard's writer lock; point-in-time reads are safe
in-process) to pick candidate shards, then each candidate sub-batch is
served through its own session.  Merge order and failure semantics are
the engine's (:meth:`repro.cluster.ShardedEngine.resolve_many`) — the
service changes scheduling and locking, never answers.
"""

from __future__ import annotations

from collections.abc import Iterable
from contextlib import ExitStack, contextmanager
from typing import TYPE_CHECKING

from repro.api.results import ResolveResult
from repro.cluster.engine import ShardedEngine
from repro.cluster.results import ClusterReport, ClusterStats, IngestReport
from repro.okb.triples import OIETriple
from repro.serving.service import JOCLService, ServingStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.persist.store import StateStore


class _SessionShard:
    """One shard as seen through its session: every delegated call runs
    under that shard's reader/writer lock, and every engine reference
    goes through ``service.engine`` so the view stays correct across a
    per-shard ``rollback`` swap.  ``okb`` reads are point-in-time (see
    the module docstring)."""

    __slots__ = ("_service",)

    def __init__(self, service: JOCLService) -> None:
        self._service = service

    @property
    def okb(self):
        return self._service.engine.okb

    def ingest(self, batch):
        return self._service.ingest(batch)

    def ingest_exclusive(self, batch):
        # Called from inside the cluster's exclusive_all section: the
        # caller already holds this shard's writer lock, so go straight
        # to the engine (service.ingest would re-take it and deadlock).
        return self._service.engine.ingest(batch)

    def note_vocabulary_drift(self, new_nps, new_rps):
        # Called from inside the cluster's exclusive_all section: the
        # caller already holds this shard's writer lock, so go straight
        # to the engine (taking exclusive() again would deadlock).
        self._service.engine.note_vocabulary_drift(new_nps, new_rps)

    def run_joint(self):
        return self._service.run_joint()

    def resolve_many(self, mentions, kind):
        return self._service.resolve_many(mentions, kind)

    def stats(self):
        return self._service.stats()


class JOCLClusterService:
    """A concurrent serving session over a :class:`ShardedEngine`.

    Parameters
    ----------
    cluster:
        The sharded engine to serve.  The service owns it (and its
        shard engines): touch them directly only when no requests are
        in flight.
    store:
        Default :class:`~repro.persist.StateStore` for :meth:`save`.
    max_batch_size:
        Per-shard micro-batching cap (see :class:`JOCLService`).
    batch_window_ms:
        Per-shard batching window (see :class:`JOCLService`): how long
        a shard's leader holds its queue open so concurrent resolves
        coalesce; 0 keeps the historical eager drain.

    Example::

        service = JOCLClusterService(cluster, store=store)
        answer = service.resolve("university of maryland")
        service.ingest(arrival_batch)       # writers lock only their shards
        manifest = service.save()           # consistent cluster-wide cut
    """

    def __init__(
        self,
        cluster: ShardedEngine,
        store: StateStore | None = None,
        max_batch_size: int = 64,
        batch_window_ms: float = 0.0,
    ) -> None:
        self._cluster = cluster
        self._store = store
        self._services = [
            JOCLService(
                engine,
                max_batch_size=max_batch_size,
                batch_window_ms=batch_window_ms,
            )
            for engine in cluster.shards
        ]
        self._shard_views = [
            _SessionShard(service) for service in self._services
        ]

    @property
    def cluster(self) -> ShardedEngine:
        """The sharded engine being served."""
        return self._cluster

    @property
    def shard_services(self) -> tuple[JOCLService, ...]:
        """The per-shard session layers, in shard order.

        For telemetry and per-shard reads.  Do **not** use a shard's
        own ``checkpoint()``/``rollback()`` here: a unilateral engine
        swap cannot re-wire the cluster's corpus-global IDF adoption or
        vocabulary bookkeeping — checkpoint the whole cluster through
        :meth:`save` / :meth:`repro.cluster.ShardedEngine.load`
        instead.  (They are disabled by construction: the per-shard
        services are created without a state store.)
        """
        return tuple(self._services)

    # ------------------------------------------------------------------
    # Reads (per-shard read locks, per-shard micro-batching)
    # ------------------------------------------------------------------
    def resolve(self, mention: str, kind: str | None = None) -> ResolveResult:
        """Thread-safe scatter/gather resolve.

        Delegates to :meth:`resolve_many` with a single-mention batch —
        one routing pass, candidate shards served through their
        micro-batched sessions, the engine's documented merge order —
        so the single- and batched-mention paths cannot diverge.

        Example::

            answer = service.resolve("umd", kind="entity")
        """
        return self.resolve_many([mention], kind)[0]

    def resolve_many(
        self, mentions: Iterable[str], kind: str | None = None
    ) -> list[ResolveResult]:
        """Thread-safe batched scatter/gather resolve.

        Delegates to :meth:`repro.cluster.ShardedEngine.resolve_many_with`
        (one sub-batch per shard, no partial results, the engine's merge
        order and fan-out cap), with each sub-batch served under its
        shard's read lock.
        """
        return self._cluster.resolve_many_with(
            self._shard_views, mentions, kind
        )

    def run_joint(self) -> ClusterReport:
        """Thread-safe cluster-wide joint inference.

        Delegates to :meth:`repro.cluster.ShardedEngine.run_joint_with`
        — the engine's empty-shard handling and fan-out cap — with every
        non-empty shard's report produced under that shard's read lock.
        """
        return self._cluster.run_joint_with(
            self._shard_views, stats=self.stats()
        )

    def stats(self) -> ClusterStats:
        """Cluster stats from consistent per-shard snapshots."""
        return ClusterStats(
            router=self._cluster.router.name,
            per_shard=tuple(service.stats() for service in self._services),
            n_ingests=self._cluster.n_ingests,
        )

    def serving_stats(self) -> list[ServingStats]:
        """Per-shard micro-batching telemetry, in shard order."""
        return [service.serving_stats() for service in self._services]

    # ------------------------------------------------------------------
    # Writes (per-shard write locks — shard A readers never wait on B)
    # ------------------------------------------------------------------
    def ingest(self, triples: Iterable[OIETriple]) -> IngestReport:
        """Route a batch and ingest shard-parallel, locking per shard.

        A batch that re-mentions known vocabulary (the Zipf-dominant
        case) ingests under only the receiving shards' writer locks —
        readers on untouched shards proceed concurrently throughout.  A
        batch bringing *new* vocabulary briefly excludes every shard:
        the corpus-global IDF fold, the drift broadcast and the
        per-shard ingests must appear atomically, since the shared
        tables are read lock-free by every decode and a reader must
        never see post-batch word weights against a pre-batch OKB.
        """
        return self._cluster.ingest_with(
            self._shard_views, triples, exclusive_all=self._exclusive_all
        )

    @contextmanager
    def _exclusive_all(self):
        """Writer locks on every shard, in shard order (deadlock-free)."""
        with ExitStack() as stack:
            for service in self._services:
                stack.enter_context(service.exclusive())
            yield

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def save(self, store: StateStore | None = None) -> dict:
        """Checkpoint the whole cluster at a consistent cut.

        Takes every shard's writer lock in shard order (total order =
        no deadlock), then runs
        :meth:`repro.cluster.ShardedEngine.save`; in-flight readers
        drain first, new requests wait until the cut is taken.  Returns
        the cluster manifest.
        """
        store = store or self._store
        if store is None:
            from repro.api.errors import CheckpointError

            raise CheckpointError(
                "this service has no state store; pass one to the "
                "constructor or to save() directly"
            )
        with self._exclusive_all():
            return self._cluster.save(store)
