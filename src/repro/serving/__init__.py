"""Concurrent serving sessions over a :class:`repro.api.JOCLEngine`.

A bare engine is thread-safe for concurrent *reads* (PR 4 closed the
lazy-decoding races), but a production deployment needs more: reads and
writes interleaving without torn state, request batching, and a
durability story.  :class:`JOCLService` is that session layer:

* **read/write discipline** — any number of concurrent ``resolve`` /
  ``resolve_many`` / ``run_joint`` readers; ``ingest`` / ``fit`` /
  ``checkpoint`` writers are serialized and exclude readers, so every
  answer reflects a consistent engine state;
* **micro-batching** — in-flight ``resolve`` calls are coalesced by a
  leader thread into one shared decode pass (the ``resolve_many``
  amortization, applied transparently to concurrent single-mention
  traffic); a configurable ``batch_window_ms`` holds the queue open a
  few milliseconds so concurrent arrivals land in *full* batches, and
  duplicate ``(mention, kind)`` requests inside a batch share one
  engine resolve;
* **telemetry** — :meth:`JOCLService.serving_stats` reports batching
  counters, queue-depth gauges and p50/p95/p99 request-latency
  percentiles over a sliding reservoir
  (:func:`latency_percentile` is the shared nearest-rank helper);
* **durability** — ``checkpoint()`` snapshots the engine into a
  :class:`repro.persist.StateStore`; ``rollback()`` restores any
  snapshot into a *fresh* engine off-lock and atomically swaps it in,
  so reads keep being served from the old engine for the whole load
  (zero-downtime swap).

Answers are byte-identical to a single-threaded loop over
``engine.resolve`` — pinned by the serving-equivalence smoke test in
CI.

:class:`JOCLClusterService` lifts the same session discipline over a
:class:`repro.cluster.ShardedEngine`: one :class:`JOCLService` per
shard, so locks and micro-batch queues are *per shard* — readers on
shard A never block writers on shard B, and the only cross-shard
exclusion is the consistent cut of :meth:`JOCLClusterService.save`.
"""

from repro.serving.cluster_service import JOCLClusterService
from repro.serving.service import JOCLService, ServingStats, latency_percentile

__all__ = [
    "JOCLClusterService",
    "JOCLService",
    "ServingStats",
    "latency_percentile",
]
