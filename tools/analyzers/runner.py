"""File discovery, orchestration and reporting for the analyzers.

The CLI contract (wired into CI as a blocking job)::

    python -m tools.analyzers [--format=text|github] [--baseline FILE]
                              [--update-baseline] [--list-codes] PATH...

* findings suppressed by ``# repro: disable=`` comments never appear;
* findings matching the baseline are reported as grandfathered but do
  not affect the exit code;
* any *fresh* finding (and any unparseable file, code ``PARSE``) exits
  non-zero.

``--format=github`` emits ``::error`` workflow commands so findings
show up as inline annotations on pull requests."""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path

from tools.analyzers.core import (
    REPO_ROOT,
    Check,
    Finding,
    Suppressions,
    load_baseline,
    parse_module,
    split_fresh,
    write_baseline,
)
from tools.analyzers.determinism import DeterminismCheck
from tools.analyzers.exceptions import ExceptionContractCheck
from tools.analyzers.lock import LockDisciplineCheck, build_lock_model
from tools.analyzers.schema import SchemaContractCheck

#: Default baseline location, committed next to the analyzers.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

#: The registered checks, in reporting order.  Adding a checker is one
#: import plus one entry here (see docs/development.md).
ALL_CHECKS: tuple[Check, ...] = (
    LockDisciplineCheck(),
    DeterminismCheck(),
    SchemaContractCheck(),
    ExceptionContractCheck(),
)


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Python files under ``paths`` (files taken as-is), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            files.update(path.rglob("*.py"))
    return sorted(files)


def _repo_relative(path: Path) -> str:
    try:
        relative = path.resolve().relative_to(REPO_ROOT)
    except ValueError:
        relative = path
    return str(relative).replace("\\", "/")


def run_checks(
    files: Iterable[Path],
    checks: Sequence[Check] = ALL_CHECKS,
) -> list[Finding]:
    """Run every interested check over every file; suppressions applied."""
    findings: list[Finding] = []
    for file_path in files:
        relative = _repo_relative(file_path)
        source = file_path.read_text(encoding="utf-8")
        try:
            module = parse_module(relative, source)
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=relative,
                    line=error.lineno or 1,
                    code="PARSE",
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        suppressions = Suppressions(source)
        for check in checks:
            if not check.interested(relative):
                continue
            findings.extend(suppressions.apply(check.run(module)))
    return sorted(findings)


def _emit(findings: Iterable[Finding], fmt: str, grandfathered: bool = False) -> None:
    tag = " (baseline)" if grandfathered else ""
    for finding in findings:
        if fmt == "github":
            print(
                f"::error file={finding.path},line={finding.line},"
                f"title={finding.code}::{finding.message}{tag}"
            )
        else:
            print(
                f"{finding.path}:{finding.line}: {finding.code} "
                f"{finding.message}{tag}"
            )


def _emit_lock_model(files: Iterable[Path], target: Path) -> int:
    """Write the LOCK checker's ownership model for ``files`` as JSON."""
    lock_check = LockDisciplineCheck()
    modules = []
    for file_path in files:
        relative = _repo_relative(file_path)
        if not lock_check.interested(relative):
            continue
        try:
            modules.append(
                parse_module(relative, file_path.read_text(encoding="utf-8"))
            )
        except SyntaxError as error:
            print(f"{relative}: does not parse: {error.msg}", file=sys.stderr)
            return 1
    model = build_lock_model(modules)
    target.write_text(
        json.dumps(model, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"lock model: {len(model['classes'])} class(es) -> {target}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyzers",
        description="Project-specific static analysis (LOCK / DET / SCHEMA).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output format (github = workflow annotations)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file for grandfathered findings "
        f"(default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print every finding code each checker can emit",
    )
    parser.add_argument(
        "--emit-lock-model",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the LOCK checker's lock-ownership model (lock "
        "attributes + guarded-by map) as JSON to PATH and exit — the "
        "input the repro.diagnostics runtime sanitizer enforces",
    )
    args = parser.parse_args(argv)

    if args.list_codes:
        for check in ALL_CHECKS:
            for code in check.codes:
                print(f"{code}\t{check.name}")
        print("PARSE\trunner")
        return 0

    files = discover_files(Path(p) for p in args.paths)
    if not files:
        print("no python files found under the given paths", file=sys.stderr)
        return 2

    if args.emit_lock_model is not None:
        return _emit_lock_model(files, args.emit_lock_model)

    findings = run_checks(files)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} finding(s) grandfathered")
        return 0

    baseline = load_baseline(args.baseline)
    fresh, grandfathered = split_fresh(findings, baseline)
    _emit(grandfathered, args.format, grandfathered=True)
    _emit(fresh, args.format)
    checked = len(files)
    if fresh:
        print(
            f"{len(fresh)} fresh finding(s) over {checked} file(s) "
            f"({len(grandfathered)} grandfathered)",
            file=sys.stderr,
        )
        return 1
    print(
        f"clean: {checked} file(s), {len(grandfathered)} grandfathered "
        f"finding(s), 0 fresh"
    )
    return 0
