"""File discovery, orchestration and reporting for the analyzers.

The CLI contract (wired into CI as a blocking job)::

    python -m tools.analyzers [--format=text|github] [--baseline FILE]
                              [--update-baseline] [--list-codes] PATH...

* findings suppressed by ``# repro: disable=`` comments never appear;
* findings matching the baseline are reported as grandfathered but do
  not affect the exit code;
* any *fresh* finding (and any unparseable file, code ``PARSE``) exits
  non-zero.

``--format=github`` emits ``::error`` workflow commands so findings
show up as inline annotations on pull requests."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path

from tools.analyzers.core import (
    REPO_ROOT,
    Check,
    Finding,
    Suppressions,
    load_baseline,
    parse_module,
    split_fresh,
    write_baseline,
)
from tools.analyzers.determinism import DeterminismCheck
from tools.analyzers.lock import LockDisciplineCheck
from tools.analyzers.schema import SchemaContractCheck

#: Default baseline location, committed next to the analyzers.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

#: The registered checks, in reporting order.  Adding a checker is one
#: import plus one entry here (see docs/development.md).
ALL_CHECKS: tuple[Check, ...] = (
    LockDisciplineCheck(),
    DeterminismCheck(),
    SchemaContractCheck(),
)


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Python files under ``paths`` (files taken as-is), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            files.update(path.rglob("*.py"))
    return sorted(files)


def _repo_relative(path: Path) -> str:
    try:
        relative = path.resolve().relative_to(REPO_ROOT)
    except ValueError:
        relative = path
    return str(relative).replace("\\", "/")


def run_checks(
    files: Iterable[Path],
    checks: Sequence[Check] = ALL_CHECKS,
) -> list[Finding]:
    """Run every interested check over every file; suppressions applied."""
    findings: list[Finding] = []
    for file_path in files:
        relative = _repo_relative(file_path)
        source = file_path.read_text(encoding="utf-8")
        try:
            module = parse_module(relative, source)
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=relative,
                    line=error.lineno or 1,
                    code="PARSE",
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        suppressions = Suppressions(source)
        for check in checks:
            if not check.interested(relative):
                continue
            findings.extend(suppressions.apply(check.run(module)))
    return sorted(findings)


def _emit(findings: Iterable[Finding], fmt: str, grandfathered: bool = False) -> None:
    tag = " (baseline)" if grandfathered else ""
    for finding in findings:
        if fmt == "github":
            print(
                f"::error file={finding.path},line={finding.line},"
                f"title={finding.code}::{finding.message}{tag}"
            )
        else:
            print(
                f"{finding.path}:{finding.line}: {finding.code} "
                f"{finding.message}{tag}"
            )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyzers",
        description="Project-specific static analysis (LOCK / DET / SCHEMA).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output format (github = workflow annotations)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file for grandfathered findings "
        f"(default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print every finding code each checker can emit",
    )
    args = parser.parse_args(argv)

    if args.list_codes:
        for check in ALL_CHECKS:
            for code in check.codes:
                print(f"{code}\t{check.name}")
        print("PARSE\trunner")
        return 0

    files = discover_files(Path(p) for p in args.paths)
    if not files:
        print("no python files found under the given paths", file=sys.stderr)
        return 2
    findings = run_checks(files)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} finding(s) grandfathered")
        return 0

    baseline = load_baseline(args.baseline)
    fresh, grandfathered = split_fresh(findings, baseline)
    _emit(grandfathered, args.format, grandfathered=True)
    _emit(fresh, args.format)
    checked = len(files)
    if fresh:
        print(
            f"{len(fresh)} fresh finding(s) over {checked} file(s) "
            f"({len(grandfathered)} grandfathered)",
            file=sys.stderr,
        )
        return 1
    print(
        f"clean: {checked} file(s), {len(grandfathered)} grandfathered "
        f"finding(s), 0 fresh"
    )
    return 0
