"""Project-specific static analysis for the JOCL codebase.

The stack's guarantees — byte-identical decisions under scale-out —
rest on three hand-enforced invariants:

* **lock discipline** in the concurrent layers (``repro.serving``,
  ``repro.cluster``): engine/service state mutates only under the
  owning lock, and locks are acquired in one global order;
* **determinism** everywhere decisions are made: no iteration order
  leaking out of hash-based containers, no ``id()``/``hash()`` keys,
  no unseeded randomness (the PYTHONHASHSEED bug class PR 1 fixed by
  hand in the Falcon baseline);
* **schema contracts** on every serialized envelope: ``to_dict`` pairs
  with ``from_dict``, payloads are schema-versioned, and malformed
  input surfaces as :class:`repro.api.errors.SchemaError` rather than
  a raw ``KeyError``/``TypeError``.

This package machine-enforces them.  Architecture:

* :mod:`tools.analyzers.core` — the framework: :class:`Finding`,
  the :class:`Check` protocol, ``# repro: disable=`` suppression
  comments, and the baseline file for grandfathered findings;
* :mod:`tools.analyzers.lock`, :mod:`tools.analyzers.determinism`,
  :mod:`tools.analyzers.schema`, :mod:`tools.analyzers.exceptions` —
  the project checkers;
* :mod:`tools.analyzers.runner` — file discovery, orchestration, the
  ``--format=text|github`` reporters and ``--emit-lock-model`` (the
  lock-ownership export the ``repro.diagnostics`` runtime sanitizer
  consumes).

Run it the way CI does::

    python -m tools.analyzers --format=github src

Exit code 0 means no fresh findings (baseline-matched findings are
reported but do not fail the run).  See ``docs/development.md`` for
the full code table and the suppression syntax.
"""

from tools.analyzers.core import (
    BaselineError,
    Check,
    Finding,
    ParsedModule,
    Suppressions,
    parse_module,
)
from tools.analyzers.determinism import DeterminismCheck
from tools.analyzers.exceptions import ExceptionContractCheck
from tools.analyzers.lock import (
    LOCK_MODEL_VERSION,
    LockDisciplineCheck,
    build_lock_model,
)
from tools.analyzers.runner import ALL_CHECKS, main, run_checks
from tools.analyzers.schema import SchemaContractCheck

__all__ = [
    "ALL_CHECKS",
    "LOCK_MODEL_VERSION",
    "BaselineError",
    "Check",
    "DeterminismCheck",
    "ExceptionContractCheck",
    "Finding",
    "LockDisciplineCheck",
    "ParsedModule",
    "SchemaContractCheck",
    "Suppressions",
    "build_lock_model",
    "main",
    "parse_module",
    "run_checks",
]
