"""Project-specific static analysis for the JOCL codebase.

The stack's guarantees — byte-identical decisions under scale-out —
rest on three hand-enforced invariants:

* **lock discipline** in the concurrent layers (``repro.serving``,
  ``repro.cluster``): engine/service state mutates only under the
  owning lock, and locks are acquired in one global order;
* **determinism** everywhere decisions are made: no iteration order
  leaking out of hash-based containers, no ``id()``/``hash()`` keys,
  no unseeded randomness (the PYTHONHASHSEED bug class PR 1 fixed by
  hand in the Falcon baseline);
* **schema contracts** on every serialized envelope: ``to_dict`` pairs
  with ``from_dict``, payloads are schema-versioned, and malformed
  input surfaces as :class:`repro.api.errors.SchemaError` rather than
  a raw ``KeyError``/``TypeError``.

This package machine-enforces them.  Architecture:

* :mod:`tools.analyzers.core` — the framework: :class:`Finding`,
  the :class:`Check` protocol, ``# repro: disable=`` suppression
  comments, and the baseline file for grandfathered findings;
* :mod:`tools.analyzers.lock`, :mod:`tools.analyzers.determinism`,
  :mod:`tools.analyzers.schema` — the three project checkers;
* :mod:`tools.analyzers.runner` — file discovery, orchestration and
  the ``--format=text|github`` reporters.

Run it the way CI does::

    python -m tools.analyzers --format=github src

Exit code 0 means no fresh findings (baseline-matched findings are
reported but do not fail the run).  See ``docs/development.md`` for
the full code table and the suppression syntax.
"""

from tools.analyzers.core import (
    BaselineError,
    Check,
    Finding,
    ParsedModule,
    Suppressions,
    parse_module,
)
from tools.analyzers.determinism import DeterminismCheck
from tools.analyzers.lock import LockDisciplineCheck
from tools.analyzers.runner import ALL_CHECKS, main, run_checks
from tools.analyzers.schema import SchemaContractCheck

__all__ = [
    "ALL_CHECKS",
    "BaselineError",
    "Check",
    "DeterminismCheck",
    "Finding",
    "LockDisciplineCheck",
    "ParsedModule",
    "SchemaContractCheck",
    "Suppressions",
    "main",
    "parse_module",
    "run_checks",
]
