"""LOCK: writer-lock discipline in the concurrent layers.

Scope: modules under ``repro/serving/``, ``repro/cluster/`` and
``repro/http/`` — the layers whose correctness story ("readers never
observe a half applied write", "cluster cuts are consistent", "the
event loop owns the transport state") is a locking story.

For every class that *owns* a lock (an ``__init__`` attribute assigned
from the ``threading.Lock``/``RLock``/``Condition`` family, a
``_ReadWriteLock``, or any ``*Lock``-named constructor), the checker
enforces:

``LOCK01`` — **unguarded mutation.**  Outside ``__init__``, assigning
to instance state (``self.x = ...``, ``self.x += ...``,
``del self.x``, ``self.x[k] = ...``) or calling a known mutator on an
instance attribute (``.append``/``.update``/``.popleft``/...) must
happen lexically inside a ``with self.<lock>``-family context — or
inside a method the checker resolves as *lock-holding*: a method whose
every intra-class call site is itself guarded (computed to fixpoint,
so ``ingest -> with self._lock: self._ingest_locked()`` resolves), or
whose name ends in ``_locked`` (the project's documented convention
for callee-side contracts the call graph cannot see, e.g. callbacks).

``LOCK02`` — **acquisition-order inversion.**  Nested ``with`` blocks
acquiring two owned locks define a precedence edge (outer before
inner).  If the same pair is also acquired in the opposite order
anywhere in the module, both sites are flagged — the classic ABBA
deadlock.  The documented shard-order rule is a special case: a loop
that enters per-shard locks while iterating ``reversed(...)`` (or a
descending ``sorted(..., reverse=True)``) is flagged directly, because
every other acquirer walks shards in ascending order.

The checker is lexical plus one call-graph fixpoint — it cannot see
locks taken by other objects on the caller's behalf.  Such sites carry
an inline ``# repro: disable=LOCK01`` with the justification, which is
exactly the reviewable artifact we want.

Beyond findings, the same analysis exports a **lock model**
(:func:`build_lock_model`, surfaced as ``--emit-lock-model=PATH`` on
the runner): per lock-owning class, which attributes are locks (and
their constructor), and which attributes are guarded by which locks —
the map the runtime sanitizer (``repro.diagnostics``) enforces on
every mutation, so the static fixpoint and the runtime checks share
one source of truth."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from tools.analyzers.core import Finding, ParsedModule, call_name

#: Constructor names that make an attribute a lock (matched on the
#: rightmost dotted component, so ``threading.RLock`` and a bare
#: ``RLock`` both count).
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Method calls on a lock attribute that enter a guarded region when
#: used as a ``with`` context (``self._rw.read()`` / ``.write()``).
_GUARD_METHODS = {"read", "write", "acquire", "exclusive"}

#: Mutating methods of the containers instance state is kept in.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: Attributes that are read-mostly telemetry mutated only before
#: publication — none today; mutations of every attribute are checked.


class LockDisciplineCheck:
    """See the module docstring."""

    name = "lock"
    codes = ("LOCK01", "LOCK02")

    def interested(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return (
            "/serving/" in normalized
            or "/cluster/" in normalized
            or "/http/" in normalized
        )

    def run(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        findings.extend(_order_inversions(module))
        # The shard-order rule binds classes that enter *other* objects'
        # locks too (a session façade owns no lock of its own), so this
        # pass covers the whole module, not just lock-owning classes.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                findings.extend(_check_reversed_shard_loop(module, node))
        return findings

    # ------------------------------------------------------------------
    def _check_class(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = _owned_locks(cls)
        if not locks:
            return
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        lock_holding = _lock_holding_methods(methods, locks)
        for name, method in methods.items():
            if name in ("__init__", "__new__", "__post_init__"):
                continue
            if name in lock_holding:
                continue
            yield from self._check_method(module, cls, method, locks)

    def _check_method(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        locks: set[str],
    ) -> Iterator[Finding]:
        for node, guarded in _walk_guarded(method, locks):
            if guarded:
                continue
            attribute = _mutated_self_attribute(node)
            if attribute is None or attribute in locks:
                continue
            yield Finding(
                path=module.path,
                line=node.lineno,
                code="LOCK01",
                message=(
                    f"{cls.name}.{method.name} mutates self.{attribute} "
                    f"outside any owned lock context "
                    f"({', '.join(sorted(locks))})"
                ),
            )


# ----------------------------------------------------------------------
# Lock inventory and guarded-region tracking
# ----------------------------------------------------------------------
def _owned_locks(cls: ast.ClassDef) -> set[str]:
    """Names of ``self.<attr>`` lock attributes assigned in ``__init__``."""
    locks: set[str] = set()
    for item in cls.body:
        if not isinstance(item, ast.FunctionDef) or item.name != "__init__":
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            constructor = call_name(node.value)
            if constructor is None:
                continue
            basename = constructor.rsplit(".", 1)[-1]
            if basename not in _LOCK_CONSTRUCTORS and not basename.endswith("Lock"):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
    return locks


def _guard_lock(item: ast.withitem, locks: set[str]) -> str | None:
    """The owned lock an ``with`` item acquires, if any.

    Recognizes ``with self._lock:`` and ``with self._rw.read():`` /
    ``.write()`` / ``.acquire()`` / ``.exclusive()`` shapes.
    """
    expr = item.context_expr
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _GUARD_METHODS
    ):
        expr = expr.func.value
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in locks
    ):
        return expr.attr
    return None


def _walk_held(
    method: ast.AST, locks: set[str]
) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Yield ``(node, owned_locks_held_lexically)`` for the method body,
    without descending into nested def/class scopes."""

    def visit(
        node: ast.AST, held: tuple[str, ...]
    ) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    acquired = _guard_lock(item, locks)
                    if acquired is not None and acquired not in child_held:
                        child_held = child_held + (acquired,)
            yield child, child_held
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            yield from visit(child, child_held)

    yield from visit(method, ())


def _walk_guarded(
    method: ast.AST, locks: set[str]
) -> Iterator[tuple[ast.AST, bool]]:
    """Yield ``(node, inside_owned_lock_context)`` for the method body,
    without descending into nested def/class scopes."""
    for node, held in _walk_held(method, locks):
        yield node, bool(held)


def _mutated_self_attribute(node: ast.AST) -> str | None:
    """The ``self.<attr>`` an AST node mutates, or ``None``."""

    def self_attr(expr: ast.AST) -> str | None:
        # self.attr, self.attr[...] — the owned attribute either way.
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    if isinstance(node, ast.Assign):
        for target in node.targets:
            attribute = self_attr(target)
            if attribute is not None:
                return attribute
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return self_attr(node.target)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attribute = self_attr(target)
            if attribute is not None:
                return attribute
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATORS
    ):
        return self_attr(node.func.value)
    return None


def _lock_holding_methods(
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    locks: set[str],
) -> set[str]:
    """Methods that provably run with an owned lock held.

    Seed: the ``*_locked`` naming convention.  Fixpoint: a method all
    of whose intra-class call sites (``self.m(...)``) are inside an
    owned-lock context or inside an already lock-holding method.
    Methods never called from inside the class do not qualify — public
    entry points must take their own locks.
    """
    holding = {name for name in methods if name.endswith("_locked")}
    # call sites: callee -> list of (caller, guarded_at_site)
    sites: dict[str, list[tuple[str, bool]]] = {}
    for caller, body in methods.items():
        for node, guarded in _walk_guarded(body, locks):
            if not isinstance(node, ast.Call):
                continue
            target = call_name(node)
            if target is None or not target.startswith("self."):
                continue
            callee = target.split(".", 1)[1]
            if "." in callee or callee not in methods:
                continue
            sites.setdefault(callee, []).append((caller, guarded))
    changed = True
    while changed:
        changed = False
        for callee, callers in sites.items():
            if callee in holding:
                continue
            if all(guarded or caller in holding for caller, guarded in callers):
                holding.add(callee)
                changed = True
    return holding


# ----------------------------------------------------------------------
# LOCK02: acquisition-order inversions
# ----------------------------------------------------------------------
def _order_inversions(module: ParsedModule) -> Iterator[Finding]:
    """ABBA pairs across the module, plus reversed shard-order loops."""
    # Collect (outer, inner, line) acquisition edges for self-owned
    # locks, per enclosing class (lock names only collide per class).
    edges: dict[str, list[tuple[str, str, int]]] = {}
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _owned_locks(cls)
        if not locks:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from _collect_edges(module, cls, method, locks, edges)
    for _cls_name, pairs in edges.items():
        seen: dict[tuple[str, str], int] = {}
        for outer, inner, line in pairs:
            seen.setdefault((outer, inner), line)
        for (outer, inner), line in sorted(seen.items(), key=lambda kv: kv[1]):
            if (inner, outer) in seen and seen[(inner, outer)] < line:
                yield Finding(
                    path=module.path,
                    line=line,
                    code="LOCK02",
                    message=(
                        f"locks {inner!r} then {outer!r} acquired in the "
                        f"opposite order at line {seen[(inner, outer)]} "
                        f"(ABBA deadlock)"
                    ),
                )


def _collect_edges(
    module: ParsedModule,
    cls: ast.ClassDef,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
    locks: set[str],
    edges: dict[str, list[tuple[str, str, int]]],
) -> Iterator[Finding]:
    """Record nested-acquisition edges; flag reversed shard loops."""

    def visit(node: ast.AST, held: tuple[str, ...]) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    acquired = _guard_lock(item, locks)
                    if acquired is not None:
                        for outer in child_held:
                            if outer != acquired:
                                edges.setdefault(cls.name, []).append(
                                    (outer, acquired, child.lineno)
                                )
                        child_held = child_held + (acquired,)
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            yield from visit(child, child_held)

    yield from visit(method, ())


def _check_reversed_shard_loop(
    module: ParsedModule, loop: ast.For
) -> Iterator[Finding]:
    """A loop iterating ``reversed(...)`` (or descending ``sorted``)
    while entering per-element lock contexts violates the shard-order
    rule: every other acquirer takes shard locks in ascending order."""
    iterator = loop.iter
    descending = False
    if isinstance(iterator, ast.Call):
        name = call_name(iterator)
        if name == "reversed":
            descending = True
        elif name == "sorted":
            for keyword in iterator.keywords:
                if keyword.arg == "reverse" and not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    descending = True
    if not descending:
        return
    for node in ast.walk(loop):
        acquires = False
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquires = any(
                _is_element_lock_entry(item.context_expr) for item in node.items
            )
        elif isinstance(node, ast.Call):
            # stack.enter_context(shard.exclusive()) and friends.
            name = call_name(node)
            if name is not None and name.endswith("enter_context"):
                acquires = any(_is_element_lock_entry(arg) for arg in node.args)
        if acquires:
            yield Finding(
                path=module.path,
                line=node.lineno,
                code="LOCK02",
                message=(
                    "per-shard locks entered while iterating in "
                    "descending order — the shard-order rule requires "
                    "ascending acquisition everywhere"
                ),
            )
            return


def _is_element_lock_entry(expr: ast.AST) -> bool:
    """``element.exclusive()`` / ``.write()`` / ``.read()`` /
    ``.acquire()`` — entering a lock owned by the loop element."""
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _GUARD_METHODS
    )


# ----------------------------------------------------------------------
# Lock-model export (consumed by repro.diagnostics at test time)
# ----------------------------------------------------------------------
#: Bump when the JSON shape below changes incompatibly.
LOCK_MODEL_VERSION = 1


def build_lock_model(modules: Iterable[ParsedModule]) -> dict:
    """The lock-ownership model of every lock-owning class, as JSON data.

    Shape (``version`` + one entry per class)::

        {"version": 1, "classes": [{
            "module": "repro.serving.service",
            "qualname": "JOCLService",
            "path": "src/repro/serving/service.py",
            "locks": {"_rw": "_ReadWriteLock", "_stats_lock": "Lock"},
            "guarded": {"_engine": ["_rw"], "_writes": ["_stats_lock"]},
        }, ...]}

    ``guarded`` maps each instance attribute to the owned locks held at
    every one of its mutation sites (lexical ``with`` contexts plus the
    entry-held fixpoint over intra-class call sites).  Attributes with
    any mutation site where no owned lock is provably held are left
    out: those are LOCK01's to report statically, and exporting them
    would make the runtime checker fire on ground the static pass
    already owns (or deliberately suppressed).
    """
    classes = []
    for module in modules:
        dotted = _module_dotted_name(module.path)
        if dotted is None:
            continue
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _owned_lock_constructors(cls)
            if not locks:
                continue
            guarded = _guarded_attributes(cls, set(locks))
            classes.append(
                {
                    "module": dotted,
                    "qualname": cls.name,
                    "path": module.path,
                    "locks": dict(sorted(locks.items())),
                    "guarded": {
                        attr: sorted(guards)
                        for attr, guards in sorted(guarded.items())
                    },
                }
            )
    classes.sort(key=lambda entry: (entry["module"], entry["qualname"]))
    return {"version": LOCK_MODEL_VERSION, "classes": classes}


def _module_dotted_name(path: str) -> str | None:
    """``src/repro/serving/service.py`` -> ``repro.serving.service``."""
    parts = path.replace("\\", "/").strip("/").split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or None


def _owned_lock_constructors(cls: ast.ClassDef) -> dict[str, str]:
    """Like :func:`_owned_locks`, but mapping each lock attribute to the
    basename of the constructor that built it (``Lock``, ``Condition``,
    ``_ReadWriteLock``, ...)."""
    locks: dict[str, str] = {}
    for item in cls.body:
        if not isinstance(item, ast.FunctionDef) or item.name != "__init__":
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            constructor = call_name(node.value)
            if constructor is None:
                continue
            basename = constructor.rsplit(".", 1)[-1]
            if basename not in _LOCK_CONSTRUCTORS and not basename.endswith("Lock"):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks[target.attr] = basename
    return locks


def _entry_held(
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    locks: set[str],
) -> dict[str, frozenset[str]]:
    """Locks provably held at each method's entry.

    The which-locks refinement of :func:`_lock_holding_methods`: the
    intersection, over every intra-class call site of a method, of the
    locks held lexically at the site plus the locks held at the
    caller's own entry — iterated to (least) fixpoint from the empty
    set, so the result is sound: a lock appears only when every path
    into the method provably holds it.  Methods with no intra-class
    call sites (public entry points, ``*_locked`` callbacks the call
    graph cannot see) get the empty set.
    """
    sites: dict[str, list[tuple[str, frozenset[str]]]] = {}
    for caller, body in methods.items():
        for node, held in _walk_held(body, locks):
            if not isinstance(node, ast.Call):
                continue
            target = call_name(node)
            if target is None or not target.startswith("self."):
                continue
            callee = target.split(".", 1)[1]
            if "." in callee or callee not in methods:
                continue
            sites.setdefault(callee, []).append((caller, frozenset(held)))
    entry: dict[str, frozenset[str]] = {name: frozenset() for name in methods}
    changed = True
    while changed:
        changed = False
        for callee, callers in sites.items():
            candidates = [held | entry[caller] for caller, held in callers]
            merged = frozenset.intersection(*candidates)
            if merged != entry[callee]:
                entry[callee] = merged
                changed = True
    return entry


def _guarded_attributes(cls: ast.ClassDef, locks: set[str]) -> dict[str, set[str]]:
    """Instance attributes of ``cls`` mapped to their guarding locks."""
    methods = {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    entry = _entry_held(methods, locks)
    guarded: dict[str, set[str]] = {}
    unguarded_somewhere: set[str] = set()
    for name, method in methods.items():
        if name in ("__init__", "__new__", "__post_init__"):
            continue
        base = entry.get(name, frozenset())
        for node, held in _walk_held(method, locks):
            attribute = _mutated_self_attribute(node)
            if attribute is None or attribute in locks:
                continue
            effective = set(held) | set(base)
            if effective:
                guarded.setdefault(attribute, set()).update(effective)
            else:
                unguarded_somewhere.add(attribute)
    for attribute in unguarded_somewhere:
        guarded.pop(attribute, None)
    return guarded
