"""EXC: public entry points raise the project hierarchy, not builtins.

Scope: ``repro/api/``, ``repro/serving/`` and ``repro/cluster/`` — the
three packages whose callables are the product's contract.  That
contract (``repro.api.errors``) promises every failure a caller can
meet is a :class:`~repro.api.errors.JOCLAPIError` subclass, so callers
can catch one root type and tell "bad request" from "engine bug" from
"bad checkpoint".  SCHEMA03 enforces this for ``from_dict``; this
checker generalizes it to the whole public surface:

``EXC01`` — **raw builtin exception at a public boundary.**  A public
module-level function, or a public method of a public class, directly
raises a builtin exception type (``ValueError``, ``KeyError``,
``RuntimeError``, ...).  Fix by raising the matching
``repro.api.errors`` type — note ``InvalidRequestError`` *is* a
``ValueError``, so argument-validation call sites that catch
``ValueError`` keep working.

Approximations, on purpose: the check is lexical (no call graph), so
raw raises inside private helpers called from public methods are not
flagged — the reviewer owns those — and ``raise err`` of a caught
variable or a bare re-``raise`` never fires.  ``NotImplementedError``
is exempt: it is the documented way to declare an abstract contract.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from tools.analyzers.core import Finding, ParsedModule, call_name

#: Builtin exception types a public boundary must translate.
_RAW_BUILTINS = {
    "ArithmeticError",
    "AssertionError",
    "AttributeError",
    "Exception",
    "IOError",
    "IndexError",
    "KeyError",
    "LookupError",
    "OSError",
    "OverflowError",
    "RuntimeError",
    "StopIteration",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
}


def _is_public(name: str) -> bool:
    """Public per convention; dunders (``__init__``) count as public."""
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


class ExceptionContractCheck:
    """See the module docstring."""

    name = "exceptions"
    codes = ("EXC01",)

    def interested(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        if not ("src/repro/" in normalized or normalized.startswith("repro/")):
            return False
        return any(
            f"/{package}/" in normalized or normalized.endswith(f"/{package}.py")
            for package in ("api", "serving", "cluster", "http")
        )

    def run(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name):
                    findings.extend(_raw_raises(module, node, node.name))
            elif isinstance(node, ast.ClassDef) and _is_public(node.name):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(item.name):
                        findings.extend(
                            _raw_raises(module, item, f"{node.name}.{item.name}")
                        )
        return findings


def _raw_raises(
    module: ParsedModule,
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    qualifier: str,
) -> Iterator[Finding]:
    """Every ``raise <raw builtin>(...)`` anywhere in ``function``.

    Nested defs are included: their exceptions surface through the
    public entry point that defines (and almost always calls) them.
    """
    for node in ast.walk(function):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        name = call_name(node.exc)
        if name is None:
            continue
        basename = name.rsplit(".", 1)[-1]
        if basename not in _RAW_BUILTINS:
            continue
        yield Finding(
            path=module.path,
            line=node.lineno,
            code="EXC01",
            message=(
                f"{qualifier} raises raw {basename} at a public boundary — "
                f"raise the matching repro.api.errors type instead "
                f"(InvalidRequestError is a ValueError, so ValueError "
                f"call sites keep working)"
            ),
        )
