"""``python -m tools.analyzers`` — run the project checkers."""

import sys

from tools.analyzers.runner import main

if __name__ == "__main__":
    sys.exit(main())
