"""DETERMINISM: no hash-ordered state may leak into decisions.

Scope: everything under ``src/repro/`` — decisions (cluster
assignments, link targets, tie-breaks) are made all over the stack,
and the guarantee the benchmarks gate is *byte-identical* output
across runs, shard counts and PYTHONHASHSEED values.

Codes:

``DET01`` — **order-sensitive consumption of a set.**  A set-typed
expression (literal ``{...}``, set comprehension, ``set(...)`` /
``frozenset(...)`` call, ``.union()``/``.intersection()``/
``.difference()`` result, or a local variable assigned from one) is
consumed by an order-sensitive sink — ``list()`` / ``tuple()`` /
``enumerate()`` / ``zip()`` / ``str.join()`` / ``next(iter(...))`` —
or iterated by a ``for`` loop whose body appends to a list or yields,
without an explicit ``sorted(...)``.  Order-free consumers
(``sum``/``min``/``max``/``len``/``any``/``all``/``set``/
``frozenset``/``sorted``/membership/further set algebra) are fine:
sets are encouraged as *containers*; only their *iteration order*
must never reach an output.  Dict iteration is not flagged —
insertion order is deterministic in Python 3.7+ and this codebase
derives it from sorted or input order.

``DET02`` — **``id()``-based keys.**  ``id(x)`` depends on allocation
addresses; two runs produce different keys and any ordering or
grouping built on them is unreproducible.  Every call to the builtin
is flagged (debug-only uses carry an inline suppression).

``DET03`` — **``hash()``-ordered output.**  The builtin ``hash`` is
PYTHONHASHSEED-salted for str/bytes.  Calls are flagged inside sort
keys (``sorted``/``.sort``/``min``/``max`` ``key=`` callables) and
anywhere else outside a ``__hash__`` implementation; stable digests
(``hashlib``, project ``_stable_hash`` helpers) are different names
and pass untouched.

``DET04`` — **unseeded randomness.**  Module-level ``random.<fn>()``
calls share the process-global unseeded generator, as does
``numpy.random.<fn>()`` legacy style and ``default_rng()`` without a
seed.  Construct ``random.Random(seed)`` / ``default_rng(seed)``
instead (the codebase-wide idiom).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from tools.analyzers.core import Finding, ParsedModule, call_name

#: Builtin constructors/algebra whose result is set-typed.
_SET_CALLS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: Call targets that consume an iterable order-sensitively.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "zip", "iter"}

#: Call targets that are order-free (commutative/ordering) consumers.
_ORDER_FREE_CALLS = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "min",
    "max",
    "len",
    "any",
    "all",
    "Counter",
}

#: ``random`` module functions that draw from the global generator.
_GLOBAL_RANDOM = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

#: Legacy ``numpy.random`` module-level draws (global RandomState).
_NUMPY_GLOBAL_RANDOM = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
}


class DeterminismCheck:
    """See the module docstring."""

    name = "determinism"
    codes = ("DET01", "DET02", "DET03", "DET04")

    def interested(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return "src/repro/" in normalized or normalized.startswith("repro/")

    def run(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        findings.extend(_unordered_consumption(module))
        findings.extend(_id_keys(module))
        findings.extend(_hash_ordering(module))
        findings.extend(_unseeded_random(module))
        return findings


# ----------------------------------------------------------------------
# DET01 — set iteration order leaking into outputs
# ----------------------------------------------------------------------
def _is_set_expression(node: ast.AST, set_locals: set[str]) -> bool:
    """Whether ``node`` is statically known to be set-typed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_locals:
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name is None:
            return False
        basename = name.rsplit(".", 1)[-1]
        if name in _SET_CALLS:
            return True
        if basename in _SET_METHODS and isinstance(node.func, ast.Attribute):
            # s.union(t): set algebra on a known set (or any receiver —
            # these method names are set/frozenset vocabulary).
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra via operators: only when a side is provably a set.
        return _is_set_expression(node.left, set_locals) or _is_set_expression(
            node.right, set_locals
        )
    return False


def _set_typed_locals(scope: ast.AST) -> set[str]:
    """Local names assigned (once or repeatedly) from set expressions.

    Conservative: a name also assigned from a non-set expression in the
    same scope is dropped, so rebinding to a ``sorted(...)`` list
    clears the taint.
    """
    tainted: set[str] = set()
    cleared: set[str] = set()
    for node in _scope_walk(scope):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
            if isinstance(node.annotation, ast.Subscript):
                base = node.annotation.value
                if isinstance(base, ast.Name) and base.id in (
                    "set",
                    "frozenset",
                ):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_set_expression(value, tainted):
                tainted.add(target.id)
            else:
                cleared.add(target.id)
    return tainted - cleared


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _unordered_consumption(module: ParsedModule) -> Iterator[Finding]:
    scopes: list[ast.AST] = [module.tree]
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    for scope in scopes:
        set_locals = _set_typed_locals(scope)
        for node in _scope_walk(scope):
            yield from _check_sink(module, node, set_locals)


def _check_sink(
    module: ParsedModule, node: ast.AST, set_locals: set[str]
) -> Iterator[Finding]:
    def flag(line: int, what: str) -> Finding:
        return Finding(
            path=module.path,
            line=line,
            code="DET01",
            message=(
                f"set iteration order reaches an order-sensitive "
                f"{what}; wrap the set in sorted(...)"
            ),
        )

    if isinstance(node, ast.Call):
        name = call_name(node)
        # "".join(set_expr) — checked on the attribute itself so literal
        # receivers ('-'.join) count too.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            for arg in node.args[:1]:
                if _is_set_expression(arg, set_locals):
                    yield flag(node.lineno, "str.join()")
            return
        basename = (name or "").rsplit(".", 1)[-1]
        if name in _ORDER_SENSITIVE_CALLS or basename == "chain":
            for arg in node.args:
                if _is_set_expression(arg, set_locals):
                    yield flag(node.lineno, f"{name}()")
            return
    if isinstance(node, (ast.For, ast.comprehension)):
        iterator = node.iter
        if not _is_set_expression(iterator, set_locals):
            return
        if isinstance(node, ast.comprehension):
            # A comprehension over a set builds an ordered container
            # (list/dict) or another set; only the former leaks order.
            return  # handled via the parent comprehension node below
        if _loop_body_is_order_sensitive(node):
            yield flag(iterator.lineno, "loop accumulation")
        return
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        for comp in node.generators:
            # A generator expression feeding an order-free consumer is
            # fine; that consumer already returned before we got here
            # only for list comps.  Flag list comps directly; bare
            # generators are flagged at their consuming call.
            if isinstance(node, ast.ListComp) and _is_set_expression(
                comp.iter, set_locals
            ):
                yield flag(comp.iter.lineno, "list comprehension")


def _loop_body_is_order_sensitive(loop: ast.For) -> bool:
    """A ``for`` over a set is order-sensitive when its body appends to
    a list, yields, or string-concatenates onto an accumulator."""
    for node in ast.walk(loop):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "appendleft", "insert")
        ):
            return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            # s += ... string/list accumulation.
            return True
    return False


# ----------------------------------------------------------------------
# DET02 — id() keys
# ----------------------------------------------------------------------
def _id_keys(module: ParsedModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            yield Finding(
                path=module.path,
                line=node.lineno,
                code="DET02",
                message=(
                    "id() depends on allocation addresses — keys and "
                    "orderings built on it differ across runs; use a "
                    "stable identity (an explicit key, index or "
                    "frozenset of members)"
                ),
            )


# ----------------------------------------------------------------------
# DET03 — hash() ordering
# ----------------------------------------------------------------------
def _hash_ordering(module: ParsedModule) -> Iterator[Finding]:
    # Record which nodes live inside a __hash__ implementation.
    inside_hash: set[int] = set()
    for fn in ast.walk(module.tree):
        if isinstance(fn, ast.FunctionDef) and fn.name == "__hash__":
            for node in ast.walk(fn):
                inside_hash.add(id(node))  # repro: disable=DET02 -- AST node identity
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and id(node) not in inside_hash  # repro: disable=DET02 -- same-process membership test
        ):
            yield Finding(
                path=module.path,
                line=node.lineno,
                code="DET03",
                message=(
                    "builtin hash() is PYTHONHASHSEED-salted for strings "
                    "— any ordering or bucketing built on it is "
                    "unreproducible; use hashlib or a project stable-hash "
                    "helper"
                ),
            )


# ----------------------------------------------------------------------
# DET04 — unseeded randomness
# ----------------------------------------------------------------------
def _unseeded_random(module: ParsedModule) -> Iterator[Finding]:
    # Names bound to the random module by imports.
    random_aliases = {"random"}
    numpy_random_aliases = {"numpy.random", "np.random"}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" and alias.asname:
                    random_aliases.add(alias.asname)
                if alias.name == "numpy.random" and alias.asname:
                    numpy_random_aliases.add(alias.asname)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        prefix, _, function = name.rpartition(".")
        if prefix in random_aliases and function in _GLOBAL_RANDOM:
            yield Finding(
                path=module.path,
                line=node.lineno,
                code="DET04",
                message=(
                    f"{name}() draws from the process-global unseeded "
                    f"generator; construct random.Random(seed) and draw "
                    f"from it"
                ),
            )
        elif prefix in numpy_random_aliases and function in _NUMPY_GLOBAL_RANDOM:
            yield Finding(
                path=module.path,
                line=node.lineno,
                code="DET04",
                message=(
                    f"{name}() uses numpy's global RandomState; construct "
                    f"numpy.random.default_rng(seed) and draw from it"
                ),
            )
        elif function == "default_rng" and not node.args and not node.keywords:
            yield Finding(
                path=module.path,
                line=node.lineno,
                code="DET04",
                message=(
                    "default_rng() without a seed draws OS entropy; pass "
                    "an explicit seed"
                ),
            )
