"""The analyzer framework: findings, checks, suppressions, baselines.

A *check* is any object satisfying the :class:`Check` protocol: it
declares a ``name`` and the finding ``codes`` it can emit, decides
which files it cares about (:meth:`Check.interested`), and visits one
:class:`ParsedModule` at a time, yielding :class:`Finding` records.
Checks are pure functions of the parsed source — no imports of the
analyzed code, no execution — so they run on broken working trees and
never depend on the analyzed project's dependencies.

Suppression syntax (mirrors the ``noqa`` convention, but scoped to
this framework so the two never collide):

* ``# repro: disable=LOCK01`` on a flagged line suppresses that code
  on that line;
* the same comment alone on a line suppresses the *next* non-comment
  line (for lines too long to carry a trailing comment);
* ``# repro: disable-file=DET04`` anywhere in a file suppresses the
  code for the whole file;
* ``disable=all`` / ``disable-file=all`` suppress every code.

A suppression comment should always carry a justification after the
directive, e.g. ``# repro: disable=DET01 -- max() is order-free``.

The *baseline* file grandfathers known findings: entries match on
``(path, code, message)`` — deliberately not on line numbers, so
unrelated edits above a grandfathered finding do not resurrect it.
Matching is multiset-aware: two identical findings need two baseline
entries.  Fresh (non-baselined, non-suppressed) findings fail the run.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

#: Repository root — analyzed paths are kept relative to it so findings
#: and baselines are machine-independent.
REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: ``# repro: disable=CODE1,CODE2 [-- justification]``
_DISABLE = re.compile(
    r"#\s*repro:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)(?:\s*(?:--.*)?)?$"
)

_COMMENT_ONLY = re.compile(r"^\s*#")


class BaselineError(ValueError):
    """A baseline file that cannot be parsed or has the wrong shape."""


@dataclass(frozen=True, order=True)
class Finding:
    """One analyzer hit, anchored to a source line.

    ``path`` is repo-relative with forward slashes, so findings and
    baselines are stable across machines and operating systems.
    """

    path: str
    line: int
    code: str
    message: str

    def key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line numbers excluded)."""
        return (self.path, self.code, self.message)


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every check."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


@runtime_checkable
class Check(Protocol):
    """The plugin contract every analyzer implements."""

    #: Short identifier ("lock", "determinism", "schema").
    name: str
    #: Every finding code this check can emit (for --list-codes and
    #: for validating suppression directives in tests).
    codes: tuple[str, ...]

    def interested(self, path: str) -> bool:
        """Whether this check wants to visit ``path`` (repo-relative)."""
        ...

    def run(self, module: ParsedModule) -> Iterable[Finding]:
        """Visit one parsed module, yielding findings."""
        ...


def parse_module(path: str, source: str) -> ParsedModule:
    """Parse ``source`` into the shared per-file analysis input.

    Raises :class:`SyntaxError` — the runner reports unparseable files
    as findings of their own rather than crashing the run.
    """
    tree = ast.parse(source, filename=path)
    return ParsedModule(path=path, source=source, tree=tree)


class Suppressions:
    """Per-file suppression state parsed from ``# repro:`` comments."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()
        lines = source.splitlines()
        for number, text in enumerate(lines, start=1):
            comment = text.partition("#")[2]
            if not comment:
                continue
            match = _DISABLE.search("#" + comment)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group("codes").split(",")
                if code.strip()
            }
            if not codes:
                continue
            if match.group("scope"):
                self._file_wide |= codes
                continue
            target = number
            if _COMMENT_ONLY.match(text):
                # Standalone directive: applies to the next code line.
                target = _next_code_line(lines, number)
            self._by_line.setdefault(target, set()).update(codes)

    def suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a directive in its file."""
        return any(
            finding.code.upper() in scope or "ALL" in scope
            for scope in (self._file_wide, self._by_line.get(finding.line, ()))
        )

    def apply(self, findings: Iterable[Finding]) -> list[Finding]:
        """The findings that survive this file's directives."""
        return [finding for finding in findings if not self.suppressed(finding)]


def _next_code_line(lines: list[str], after: int) -> int:
    """First line after ``after`` (1-based) that is not blank/comment."""
    for number in range(after + 1, len(lines) + 1):
        text = lines[number - 1]
        if text.strip() and not _COMMENT_ONLY.match(text):
            return number
    return after


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
BASELINE_VERSION = 1


def load_baseline(path: Path) -> list[Finding]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} must be a mapping with version={BASELINE_VERSION}"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'findings' must be a list")
    baseline = []
    for entry in entries:
        try:
            baseline.append(
                Finding(
                    path=str(entry["path"]),
                    line=int(entry.get("line", 0)),
                    code=str(entry["code"]),
                    message=str(entry["message"]),
                )
            )
        except (TypeError, KeyError) as error:
            raise BaselineError(
                f"baseline {path}: malformed entry {entry!r}: {error}"
            ) from error
    return baseline


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Persist ``findings`` as the new grandfathered baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in sorted(findings)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_fresh(
    findings: Iterable[Finding], baseline: Iterable[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (fresh, grandfathered) against a baseline.

    Multiset semantics: each baseline entry absolves at most one
    finding with the same ``(path, code, message)`` key.
    """
    budget = Counter(entry.key() for entry in baseline)
    fresh: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in sorted(findings):
        if budget[finding.key()] > 0:
            budget[finding.key()] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered


# ----------------------------------------------------------------------
# Shared AST helpers used by more than one checker
# ----------------------------------------------------------------------
def call_name(node: ast.AST) -> str | None:
    """Dotted name of a call target: ``foo``, ``mod.foo``, ``self.a.b``."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but without descending into nested
    function/class definitions (one lexical scope at a time)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))
