"""SCHEMA: every serialized envelope honors the wire contract.

Scope: everything under ``src/repro/``.  The contract, set by
``repro.api.results`` and enforced ad hoc in PRs 1 and 5 until now:

``SCHEMA01`` — **unpaired serializer.**  A class defining ``to_dict``
must define ``from_dict`` (and vice versa): every payload that can
leave the process must be reconstructible on the other side.

``SCHEMA02`` — **unversioned envelope.**  Both halves of the pair must
reference a schema-version constant (any name containing
``SCHEMA_VERSION``), directly or through a module-local helper called
from the body (one level deep — the ``_envelope(...)`` /
``check_envelope(...)`` idiom).  An envelope without a version cannot
be evolved compatibly.

``SCHEMA03`` — **leaky ``from_dict``.**  ``from_dict`` promises to
translate malformed input into
:class:`repro.api.errors.SchemaError`; a raw ``KeyError`` /
``TypeError`` / ``ValueError`` escaping means the caller cannot tell
"bad payload" from "engine bug".  The body passes when it contains a
``try`` block whose handler catches those exceptions and raises a
``Schema*`` error, or enters a ``with`` guard / calls a module-local
helper that does (``with _parsing(...):``, ``_require(payload, ...)``).

Helpers are resolved one call level deep: module-local functions
first, then names imported from sibling project modules (``from
repro.api.results import _parsing`` parses that file — never executes
it — and qualifies the imported name the same way).  Helpers that
cannot be resolved statically should be rare; when legitimate,
suppress inline with the justification."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from pathlib import Path

from tools.analyzers.core import REPO_ROOT, Finding, ParsedModule, call_name


class SchemaContractCheck:
    """See the module docstring."""

    name = "schema"
    codes = ("SCHEMA01", "SCHEMA02", "SCHEMA03")

    def __init__(self) -> None:
        # Parsed-sibling cache: module file -> (version helper names,
        # guard helper names) defined at its top level.
        self._sibling_cache: dict[Path, tuple[set[str], set[str]]] = {}

    def interested(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return "src/repro/" in normalized or normalized.startswith("repro/")

    def run(self, module: ParsedModule) -> Iterable[Finding]:
        helpers = _module_helpers(module.tree)
        version_helpers = {
            name for name, fn in helpers.items() if _references_version(fn)
        }
        guard_helpers = {
            name for name, fn in helpers.items() if _translates_errors(fn)
        }
        imported_version, imported_guard = self._imported_helpers(module)
        version_helpers |= imported_version
        guard_helpers |= imported_guard
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(
                    self._check_class(module, node, version_helpers, guard_helpers)
                )
        return findings

    def _check_class(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        version_helpers: set[str],
        guard_helpers: set[str],
    ) -> Iterator[Finding]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        to_dict = methods.get("to_dict")
        from_dict = methods.get("from_dict")
        if to_dict is None and from_dict is None:
            return
        if from_dict is None:
            yield Finding(
                path=module.path,
                line=to_dict.lineno,
                code="SCHEMA01",
                message=(
                    f"{cls.name} defines to_dict without a from_dict — "
                    f"payloads that cross a process boundary must be "
                    f"reconstructible"
                ),
            )
            to_dict_only = True
        else:
            to_dict_only = False
        if to_dict is None:
            yield Finding(
                path=module.path,
                line=from_dict.lineno,
                code="SCHEMA01",
                message=(
                    f"{cls.name} defines from_dict without a to_dict — "
                    f"a parser without a producer is dead wire format"
                ),
            )
        for method in (to_dict, from_dict):
            if method is None:
                continue
            if not _versioned(method, version_helpers):
                yield Finding(
                    path=module.path,
                    line=method.lineno,
                    code="SCHEMA02",
                    message=(
                        f"{cls.name}.{method.name} writes or reads an "
                        f"envelope without referencing a *_SCHEMA_VERSION "
                        f"constant (directly or via a module helper)"
                    ),
                )
        if (
            from_dict is not None
            and not to_dict_only
            and not _guarded_from_dict(from_dict, guard_helpers)
        ):
            yield Finding(
                path=module.path,
                line=from_dict.lineno,
                code="SCHEMA03",
                message=(
                    f"{cls.name}.from_dict may leak "
                    f"KeyError/TypeError/ValueError on malformed "
                    f"payloads — translate them into SchemaError "
                    f"(try/except, a _parsing()-style guard, or "
                    f"guarded accessors)"
                ),
            )

    # ------------------------------------------------------------------
    # Cross-module helper resolution (one hop, parse-only)
    # ------------------------------------------------------------------
    def _imported_helpers(
        self, module: ParsedModule
    ) -> tuple[set[str], set[str]]:
        """Local names bound by ``from <project module> import name``
        whose definitions qualify as version/guard helpers."""
        version: set[str] = set()
        guard: set[str] = set()
        for node in module.tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            target = _resolve_module_file(module.path, node.module, node.level)
            if target is None:
                continue
            sibling_version, sibling_guard = self._sibling_helpers(target)
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name in sibling_version:
                    version.add(local)
                if alias.name in sibling_guard:
                    guard.add(local)
        return version, guard

    def _sibling_helpers(self, target: Path) -> tuple[set[str], set[str]]:
        cached = self._sibling_cache.get(target)
        if cached is not None:
            return cached
        try:
            tree = ast.parse(target.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            result: tuple[set[str], set[str]] = (set(), set())
            self._sibling_cache[target] = result
            return result
        helpers = _module_helpers(tree)
        result = (
            {name for name, fn in helpers.items() if _references_version(fn)},
            {name for name, fn in helpers.items() if _translates_errors(fn)},
        )
        self._sibling_cache[target] = result
        return result


def _resolve_module_file(
    analyzed_path: str, module_name: str | None, level: int
) -> Path | None:
    """Map an import statement to a project source file, if it names one.

    Absolute imports are tried against every ancestor directory of the
    analyzed file (so ``repro.api.results`` resolves from
    ``src/repro/cluster/results.py`` via the ``src`` root); relative
    imports walk up ``level`` packages from the analyzed file.
    """
    analyzed = (REPO_ROOT / analyzed_path).resolve()
    if level > 0:
        base = analyzed.parent
        for _ in range(level - 1):
            base = base.parent
        root_candidates = [base]
    else:
        root_candidates = list(analyzed.parents)
    if not module_name:
        module_parts: list[str] = []
    else:
        module_parts = module_name.split(".")
    for root in root_candidates:
        candidate = root.joinpath(*module_parts)
        for target in (
            candidate.with_suffix(".py"),
            candidate / "__init__.py",
        ):
            if target.is_file() and REPO_ROOT in target.parents:
                return target
    return None


# ----------------------------------------------------------------------
def _module_helpers(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Top-level functions of the module, by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _references_version(scope: ast.AST) -> bool:
    """Whether any name containing SCHEMA_VERSION is read in ``scope``."""
    for node in ast.walk(scope):
        name: str | None = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and "SCHEMA_VERSION" in name:
            return True
    return False


def _called_helpers(scope: ast.AST) -> set[str]:
    """Bare-name and ``cls.name``/``self.name`` call targets in scope."""
    called: set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        called.add(name.rsplit(".", 1)[-1])
    return called


def _versioned(method: ast.AST, version_helpers: set[str]) -> bool:
    if _references_version(method):
        return True
    return bool(_called_helpers(method) & version_helpers)


def _translates_errors(scope: ast.AST) -> bool:
    """A try/except catching Key/Type/Value/AttributeError and raising a
    Schema* error lives in ``scope``."""
    risky = {"KeyError", "TypeError", "ValueError", "AttributeError", "Exception"}
    for node in ast.walk(scope):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            caught: list[str] = []
            if handler.type is None:
                caught = ["Exception"]
            else:
                types = (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
                for entry in types:
                    name = call_name(entry) or (
                        entry.id if isinstance(entry, ast.Name) else None
                    )
                    if name is not None:
                        caught.append(name.rsplit(".", 1)[-1])
            if not (set(caught) & risky):
                continue
            for inner in ast.walk(handler):
                if isinstance(inner, ast.Raise) and inner.exc is not None:
                    raised = call_name(inner.exc)
                    if raised is not None and "Schema" in raised.rsplit(".", 1)[-1]:
                        return True
    return False


def _guarded_from_dict(method: ast.AST, guard_helpers: set[str]) -> bool:
    if _translates_errors(method):
        return True
    # ``with _parsing(...):`` style guards.
    for node in ast.walk(method):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                name = call_name(item.context_expr)
                if name is not None and name.rsplit(".", 1)[-1] in guard_helpers:
                    return True
    # Guarded accessor helpers (``_require(payload, "field", ...)``).
    return bool(_called_helpers(method) & guard_helpers)
