"""Developer tooling: link checking and project-specific static analysis."""
