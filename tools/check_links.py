#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repository's Markdown files.

Checks every ``[text](target)`` link in ``README.md`` and ``docs/*.md``
(plus any other tracked ``*.md`` at the repo root):

* relative file targets must exist (directories count for layout
  links);
* ``file.md#anchor`` targets must name a heading that GitHub's slugger
  would produce in that file;
* external links (``http(s)://``, ``mailto:``) are skipped — CI must
  not depend on the network.

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link).  Run it locally with::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for the hand-written docs here
#: (no nested brackets, no reference-style links).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_HEADING = re.compile(r"^#{1,6}\s+(.*)$")

_EXTERNAL = ("http://", "https://", "mailto:")


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, punctuation out, spaces to dashes."""
    heading = heading.strip().lower()
    heading = re.sub(r"[`*_]", "", heading)
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(_slugify(match.group(1)))
    return anchors


def _markdown_files() -> list[Path]:
    return sorted(REPO.glob("*.md")) + sorted(REPO.glob("docs/*.md"))


def check() -> list[str]:
    problems = []
    for path in _markdown_files():
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL):
                    continue
                where = f"{path.relative_to(REPO)}:{number}"
                base, _, anchor = target.partition("#")
                if base:
                    resolved = (path.parent / base).resolve()
                    if not resolved.exists():
                        problems.append(
                            f"{where}: broken link target {target!r}"
                        )
                        continue
                else:
                    resolved = path
                if anchor and resolved.suffix == ".md":
                    if _slugify(anchor) not in _anchors(resolved):
                        problems.append(
                            f"{where}: broken anchor {target!r} "
                            f"(no such heading in "
                            f"{resolved.relative_to(REPO)})"
                        )
    return problems


def main() -> int:
    problems = check()
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(_markdown_files())
    if problems:
        print(
            f"{len(problems)} broken link(s) across {checked} Markdown "
            f"file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"all intra-repo links resolve across {checked} Markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
