"""Table 1: NP canonicalization on ReVerb45K and NYTimes2018.

Regenerates both halves of the paper's Table 1: macro/micro/pairwise/
average F1 for the seven baselines and JOCL.  The assertion is the
paper's headline shape — JOCL has the best average F1 on both datasets.
"""

from conftest import record_result

from repro.baselines import (
    AttributeOverlapBaseline,
    CesiBaseline,
    IdfTokenOverlapBaseline,
    MorphNormBaseline,
    SistBaseline,
    TextSimilarityBaseline,
    WikidataIntegratorBaseline,
)
from repro.pipeline.experiment import (
    format_table,
    run_canonicalization_systems,
    score_clustering,
)

BASELINES = [
    MorphNormBaseline(),
    WikidataIntegratorBaseline(),
    TextSimilarityBaseline(),
    IdfTokenOverlapBaseline(),
    AttributeOverlapBaseline(),
    CesiBaseline(),
    SistBaseline(),
]


def _table(side, gold_clusters, output, title):
    rows = run_canonicalization_systems(BASELINES, side, gold_clusters, "S")
    rows.append(score_clustering("JOCL", output.np_clusters, gold_clusters))
    record_result(format_table(title, rows))
    return rows


def test_table1_reverb45k(benchmark, reverb, reverb_side, reverb_output):
    rows = benchmark.pedantic(
        _table,
        args=(
            reverb_side,
            reverb.gold.np_clusters,
            reverb_output,
            "Table 1 — NP canonicalization, ReVerb45K-shaped",
        ),
        rounds=1,
        iterations=1,
    )
    by_system = {row.system: row.average_f1 for row in rows}
    jocl = by_system.pop("JOCL")
    assert jocl > max(by_system.values()), by_system


def test_table1_nytimes2018(benchmark, nytimes, nytimes_side, nytimes_output):
    rows = benchmark.pedantic(
        _table,
        args=(
            nytimes_side,
            nytimes.gold.np_clusters,
            nytimes_output,
            "Table 1 — NP canonicalization, NYTimes2018-shaped",
        ),
        rounds=1,
        iterations=1,
    )
    by_system = {row.system: row.average_f1 for row in rows}
    jocl = by_system.pop("JOCL")
    assert jocl > max(by_system.values()), by_system
