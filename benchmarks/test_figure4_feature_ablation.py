"""Figures 4(a) and 4(b): effect of feature combinations (Table 5).

JOCL-single (one feature per factor), JOCL-double (two) and JOCL-all
(the full Section 3 vectors) on NP canonicalization and OKB entity
linking over ReVerb45K.  Shape: JOCL-all achieves the best score on
both tasks ("the more useful signals, the better the performance").
"""

import pytest
from conftest import BENCH_CONFIG, record_result

from repro.core import JOCL
from repro.core.learning import GoldAnnotations
from repro.core.variants import (
    jocl_all_config,
    jocl_double_config,
    jocl_single_config,
)
from repro.metrics import evaluate_clustering, linking_accuracy
from repro.pipeline.experiment import CanonicalizationRow, LinkingRow, format_table

VARIANTS = {
    "JOCL-single": jocl_single_config,
    "JOCL-double": jocl_double_config,
    "JOCL-all": jocl_all_config,
}


@pytest.fixture(scope="module")
def variant_outputs(reverb, reverb_side):
    outputs = {}
    for name, make_config in VARIANTS.items():
        model = JOCL(make_config(BENCH_CONFIG))
        model.fit(
            reverb.side_information("validation"),
            GoldAnnotations.from_triples(reverb.validation_triples),
        )
        outputs[name] = model.infer(reverb_side)
    return outputs


def test_figure4a_np_canonicalization(benchmark, reverb, variant_outputs):
    gold = reverb.gold.np_clusters

    def _figure():
        rows = []
        for name, output in variant_outputs.items():
            report = evaluate_clustering(output.np_clusters, gold)
            rows.append(
                CanonicalizationRow(
                    system=name,
                    macro_f1=report.macro.f1,
                    micro_f1=report.micro.f1,
                    pairwise_f1=report.pairwise.f1,
                    average_f1=report.average_f1,
                )
            )
        record_result(
            format_table(
                "Figure 4(a) — feature ablation, NP canonicalization",
                rows,
                highlight=None,
            )
        )
        return {row.system: row.average_f1 for row in rows}

    scores = benchmark.pedantic(_figure, rounds=1, iterations=1)
    assert scores["JOCL-all"] >= scores["JOCL-single"], scores
    assert scores["JOCL-all"] >= scores["JOCL-double"] - 0.02, scores


def test_figure4b_entity_linking(benchmark, reverb, variant_outputs):
    gold = reverb.gold.entity_links

    def _figure():
        rows = [
            LinkingRow(name, linking_accuracy(output.entity_links, gold))
            for name, output in variant_outputs.items()
        ]
        record_result(
            format_table(
                "Figure 4(b) — feature ablation, OKB entity linking",
                rows,
                highlight=None,
            )
        )
        return {row.system: row.accuracy for row in rows}

    scores = benchmark.pedantic(_figure, rounds=1, iterations=1)
    assert scores["JOCL-all"] >= scores["JOCL-single"], scores
    assert scores["JOCL-all"] >= scores["JOCL-double"] - 0.02, scores
