"""Extra benches: LBP convergence (Section 3.4) and scaling.

* The paper reports that learning "achieved convergence within twenty
  iterations" and inference LBP converges quickly; we measure both.
* Scaling: graph construction and inference cost as the OKB grows, and
  the sensitivity of the pair-pruning threshold (0.5 in the paper).
"""

import dataclasses

from conftest import BENCH_CONFIG, record_result

from repro.core import GraphBuilder, JOCL, JOCLConfig
from repro.datasets import ReVerb45KConfig, generate_reverb45k
from repro.factorgraph.lbp import LoopyBP


def test_lbp_converges_fast(benchmark, reverb_side):
    builder = GraphBuilder(reverb_side, BENCH_CONFIG)
    graph, _index = builder.build()
    engine = LoopyBP(
        graph, schedule=builder.schedule(), max_iterations=50, tolerance=1e-4
    )
    result = benchmark.pedantic(engine.run, rounds=1, iterations=1)
    record_result(
        "LBP convergence — iterations to tolerance 1e-4: "
        f"{result.iterations} (converged={result.converged})"
    )
    assert result.converged
    assert result.iterations <= 20  # the paper's "within twenty"


def test_inference_scales_with_triples(benchmark):
    import time

    lines = ["Scaling — inference wall time vs OKB size:"]

    def _sweep():
        timings = []
        for n_triples in (100, 200, 400):
            dataset = generate_reverb45k(
                ReVerb45KConfig(
                    n_entities=120, n_facts=260, n_triples=n_triples, seed=7
                )
            )
            side = dataset.side_information("test")
            model = JOCL(BENCH_CONFIG)
            start = time.perf_counter()
            model.infer(side)
            timings.append((n_triples, time.perf_counter() - start))
        return timings

    timings = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for n_triples, seconds in timings:
        lines.append(f"  {n_triples:>5} triples: {seconds:.2f}s")
    record_result("\n".join(lines))
    # Sanity: bounded growth (not super-linear blow-up at this scale).
    assert timings[-1][1] < 60.0


def test_pair_threshold_sensitivity(benchmark, reverb, reverb_side):
    """DESIGN.md ablation: the 0.5 IDF pair threshold trades graph size
    against canonicalization recall."""
    from repro.metrics import evaluate_clustering

    def _sweep():
        rows = []
        for threshold in (0.3, 0.5, 0.7):
            config = dataclasses.replace(BENCH_CONFIG, pair_threshold=threshold)
            builder = GraphBuilder(reverb_side, config)
            _graph, index = builder.build()
            n_pairs = sum(len(p) for p in index.pairs.values())
            output = JOCL(config).infer(reverb_side)
            f1 = evaluate_clustering(
                output.np_clusters, reverb.gold.np_clusters
            ).average_f1
            rows.append((threshold, n_pairs, f1))
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["Pair-threshold sensitivity (threshold, #pairs, NP avg F1):"]
    for threshold, n_pairs, f1 in rows:
        lines.append(f"  {threshold:.1f}  {n_pairs:>6}  {f1:.3f}")
    record_result("\n".join(lines))
    # Lower threshold => at least as many pair variables.
    assert rows[0][1] >= rows[1][1] >= rows[2][1]


def test_learning_convergence(benchmark, reverb):
    """Gradient norms must decrease over learning iterations."""
    from repro.core.learning import GoldAnnotations

    def _fit():
        model = JOCL(JOCLConfig(lbp_iterations=15, learn_iterations=10))
        history = model.fit(
            reverb.side_information("validation"),
            GoldAnnotations.from_triples(reverb.validation_triples),
        )
        return history

    history = benchmark.pedantic(_fit, rounds=1, iterations=1)
    record_result(
        "Learning convergence — gradient norms: "
        + ", ".join(f"{g:.4f}" for g in history.gradient_norms)
    )
    assert history.gradient_norms[-1] <= history.gradient_norms[0]
