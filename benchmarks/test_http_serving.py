"""HTTP serving bench: windowed batching vs the naive per-request path.

The ISSUE 9 acceptance gates, measured over a real loopback socket with
the :mod:`repro.http.loadgen` harness driving one mixed read/write
stream (hot-key-skewed resolves plus evenly-spread single-triple
ingests, each of which invalidates the decode):

* **throughput** — closed-loop concurrent load against the *windowed*
  serving path (``batch_window_ms`` > 0) must beat the naive
  per-request path (the same stream replayed one request at a time on
  one connection, the way the original ``BENCH_serving.json`` naive
  loop worked).  The win is real overlap: while one coalesced batch
  recomputes the decode (numpy releases the GIL), concurrent transport
  and parsing keep flowing — the serial path pays them end to end.
* **coalescing** — the windowed path must put a material fraction of
  requests into shared (size > 1) decode batches; the historical eager
  path managed 66/720 (~9%) and the gate pins the fix well above it.
* **equivalence** — every answer the HTTP path returns must be
  byte-identical to an in-process :class:`repro.serving.JOCLService`
  fed the same stream.
* **latency** — p50/p95/p99 are recorded for every run (load-harness
  client view and the service's own reservoir view).

Results land in ``benchmarks/BENCH_http.json`` (machine-readable,
tracked across PRs and uploaded as a CI artifact) alongside the
human-readable ``results.txt``.
"""

import http.client
import json
import time
from pathlib import Path

from conftest import record_result

from repro.core import JOCLConfig
from repro.datasets import StreamingIngestConfig, generate_streaming_ingest
from repro.http import (
    HTTP_SCHEMA_VERSION,
    HTTPServingServer,
    IngestRequest,
    LoadGenConfig,
    ResolveRequest,
    ResolveResponse,
    ServingApp,
    build_request_plan,
    run_load,
)
from repro.runtime import IncrementalRuntime
from repro.serving import JOCLService

BENCH_JSON_PATH = Path(__file__).parent / "BENCH_http.json"

CONFIG = JOCLConfig(lbp_iterations=20)

#: The 400-triple scale of the serving bench: 8 shards x 50 triples.
N_SHARDS, TRIPLES_PER_SHARD = 8, 50

#: One mixed stream, shared by every path (identical bytes on the wire).
LOAD = LoadGenConfig(
    mode="closed",
    n_requests=720,
    concurrency=16,
    write_fraction=0.05,
    hot_fraction=0.8,
    hot_keys=8,
    seed=7,
)

#: The windowed serving path under test.
BATCH_WINDOW_MS = 3.0
MAX_BATCH_SIZE = 8

#: Best-of-N walls per path to shave scheduler noise.
REPEATS = 2

#: Gate: fraction of windowed-path requests served in shared batches.
#: The eager regression managed ~9%; the window holds ~95% here.
MIN_COALESCED_FRACTION = 0.30


def _mentions(workload):
    queries = []
    for triple in workload.seed_triples:
        queries.append((triple.subject, "np"))
        queries.append((triple.predicate, "relation"))
    return queries


def _write_batches(workload):
    """Single-triple ingest bodies: the worst case for the serving
    layer, since every one invalidates the shared decode."""
    return [[triple] for batch in workload.batches for triple in batch]


def _fresh_service(workload, windowed: bool) -> JOCLService:
    engine = workload.engine(CONFIG, IncrementalRuntime())
    if windowed:
        return JOCLService(
            engine,
            max_batch_size=MAX_BATCH_SIZE,
            batch_window_ms=BATCH_WINDOW_MS,
        )
    return JOCLService(engine)


def _serial_replay(workload, plan, check_equivalence: bool):
    """The naive per-request path: one connection, one request at a
    time.  Returns (req_per_s, wall_s); with ``check_equivalence`` every
    answer is compared byte-for-byte against an in-process service fed
    the same stream (comparison time is kept out of the measured wall).
    """
    service = _fresh_service(workload, windowed=False)
    reference = (
        JOCLService(workload.engine(CONFIG, IncrementalRuntime()))
        if check_equivalence
        else None
    )
    wall_s = 0.0
    with HTTPServingServer(ServingApp(service)) as server:
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=60.0
        )
        try:
            for request in plan:
                start = time.perf_counter()
                connection.request(
                    request.method, request.path, body=request.body
                )
                response = connection.getresponse()
                body = response.read()
                wall_s += time.perf_counter() - start
                assert response.status == 200, (
                    f"serial replay got HTTP {response.status} on "
                    f"{request.path}: {body[:200]!r}"
                )
                if reference is None:
                    continue
                payload = json.loads(request.body)
                if request.kind == "read":
                    parsed = ResolveRequest.from_dict(payload)
                    over_wire = ResolveResponse.from_dict(
                        json.loads(body)
                    ).result
                    in_process = reference.resolve(
                        parsed.mention, parsed.kind
                    ).to_dict()
                    assert json.dumps(over_wire, sort_keys=True) == json.dumps(
                        in_process, sort_keys=True
                    ), (
                        f"HTTP answer for {parsed.mention!r} diverges from "
                        f"the in-process service"
                    )
                else:
                    reference.ingest(
                        list(IngestRequest.from_dict(payload).triples)
                    )
        finally:
            connection.close()
    return len(plan) / wall_s, wall_s


def _concurrent_run(workload, plan, windowed: bool):
    """Closed-loop concurrent load; returns (LoadReport, ServingStats)."""
    service = _fresh_service(workload, windowed=windowed)
    with HTTPServingServer(ServingApp(service)) as server:
        report = run_load(server.host, server.port, plan, LOAD)
    assert report.ok == report.n_requests == len(plan), (
        f"concurrent load saw failures: {report.errors}"
    )
    return report, service.serving_stats()


def _serving_section(stats, n_requests):
    return {
        "decode_batches": stats.batches,
        "coalesced_requests": stats.coalesced_requests,
        "coalesced_fraction": round(stats.coalesced_requests / n_requests, 4),
        "deduplicated_requests": stats.deduplicated_requests,
        "max_batch": stats.max_batch,
        "max_queue_depth": stats.max_queue_depth,
        "p50_ms": round(stats.p50_ms, 3),
        "p95_ms": round(stats.p95_ms, 3),
        "p99_ms": round(stats.p99_ms, 3),
    }


def test_http_windowed_batching_beats_naive_per_request(benchmark):
    workload = generate_streaming_ingest(
        StreamingIngestConfig(
            n_shards=N_SHARDS, triples_per_shard=TRIPLES_PER_SHARD, seed=7
        )
    )
    plan = build_request_plan(_mentions(workload), LOAD, _write_batches(workload))
    n_writes = sum(1 for request in plan if request.kind == "write")
    assert n_writes > 0, "the mixed stream must contain writes"
    results = {}

    def _suite():
        naive_walls, windowed, eager = [], [], []
        for repeat in range(REPEATS):
            naive_walls.append(
                _serial_replay(workload, plan, check_equivalence=repeat == 0)
            )
            windowed.append(_concurrent_run(workload, plan, windowed=True))
            eager.append(_concurrent_run(workload, plan, windowed=False))
        results["naive"] = max(naive_walls, key=lambda pair: pair[0])
        results["windowed"] = max(windowed, key=lambda pair: pair[0].req_per_s)
        results["eager"] = max(eager, key=lambda pair: pair[0].req_per_s)
        return results

    benchmark.pedantic(_suite, rounds=1, iterations=1)

    naive_req_per_s, naive_wall_s = results["naive"]
    windowed_report, windowed_stats = results["windowed"]
    eager_report, eager_stats = results["eager"]
    speedup = windowed_report.req_per_s / naive_req_per_s
    coalesced_fraction = windowed_stats.coalesced_requests / len(plan)

    payload = {
        "schema_version": HTTP_SCHEMA_VERSION,
        "workload": (
            f"streaming-ingest seed OKB, {N_SHARDS}x{TRIPLES_PER_SHARD} "
            f"triples, mixed stream of {len(plan)} requests "
            f"({n_writes} single-triple ingests)"
        ),
        "generated_by": "benchmarks/test_http_serving.py",
        "load": {
            "mode": LOAD.mode,
            "concurrency": LOAD.concurrency,
            "write_fraction": LOAD.write_fraction,
            "hot_fraction": LOAD.hot_fraction,
            "hot_keys": LOAD.hot_keys,
            "seed": LOAD.seed,
            "repeats_best_of": REPEATS,
        },
        "batching": {
            "batch_window_ms": BATCH_WINDOW_MS,
            "max_batch_size": MAX_BATCH_SIZE,
        },
        "naive_per_request": {
            "req_per_s": round(naive_req_per_s, 1),
            "wall_s": round(naive_wall_s, 6),
        },
        "windowed_concurrent": {
            "report": windowed_report.to_dict(),
            "serving": _serving_section(windowed_stats, len(plan)),
        },
        "eager_concurrent": {
            "report": eager_report.to_dict(),
            "serving": _serving_section(eager_stats, len(plan)),
        },
        "windowed_vs_naive_speedup": round(speedup, 3),
        "answers_identical": True,
    }
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    record_result(
        "HTTP serving — windowed batching vs naive per-request "
        f"(best of {REPEATS}, {len(plan)} mixed requests):\n"
        f"  naive serial   {naive_req_per_s:8.1f} req/s\n"
        f"  eager conc     {eager_report.req_per_s:8.1f} req/s  "
        f"(p99 {eager_report.p99_ms:7.1f} ms, "
        f"{eager_stats.coalesced_requests} coalesced)\n"
        f"  windowed conc  {windowed_report.req_per_s:8.1f} req/s  "
        f"(p99 {windowed_report.p99_ms:7.1f} ms, "
        f"{windowed_stats.coalesced_requests} coalesced, "
        f"{windowed_stats.deduplicated_requests} deduplicated)  "
        f"x{speedup:.2f} vs naive"
    )

    # --- the hard gates -------------------------------------------------
    assert windowed_report.req_per_s > naive_req_per_s, (
        f"windowed batching under concurrent load ({windowed_report.req_per_s}"
        f" req/s) must beat the naive per-request path ({naive_req_per_s:.1f}"
        f" req/s)"
    )
    assert coalesced_fraction >= MIN_COALESCED_FRACTION, (
        f"only {windowed_stats.coalesced_requests}/{len(plan)} requests "
        f"landed in shared decode batches ({coalesced_fraction:.1%}); the "
        f"windowed path must hold >= {MIN_COALESCED_FRACTION:.0%} — the "
        f"66/720 eager regression is back"
    )
    assert windowed_stats.deduplicated_requests > 0, (
        "hot-key traffic produced no in-batch deduplication"
    )
    assert 0 < windowed_report.p50_ms <= windowed_report.p95_ms <= (
        windowed_report.p99_ms
    ), "latency percentiles missing from the load report"
    assert 0 < windowed_stats.p50_ms <= windowed_stats.p99_ms, (
        "latency percentiles missing from the serving reservoir"
    )
