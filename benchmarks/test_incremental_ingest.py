"""Incremental-ingest bench: warm ingest-then-infer vs cold re-inference.

The ISSUE 3 acceptance gate: on the streaming-ingest workload at the
400-triple scale, a warm engine absorbing a 10% arrival batch must be
>= 3x faster than re-running the whole batch job from scratch (side-info
build + graph build + full LBP over the union), with *identical*
decisions and observable component reuse
(``ExecutionProfile.reused_components > 0``).

Results land in ``benchmarks/BENCH_incremental.json`` (machine-readable,
tracked across PRs and uploaded as a CI artifact) alongside the
human-readable ``results.txt``.
"""

import json
import time
from pathlib import Path

from conftest import record_result

from repro.api import JOCLEngine
from repro.core import JOCLConfig
from repro.datasets import StreamingIngestConfig, generate_streaming_ingest
from repro.runtime import IncrementalRuntime

BENCH_JSON_PATH = Path(__file__).parent / "BENCH_incremental.json"

CONFIG = JOCLConfig(lbp_iterations=20)

#: (shards, triples per shard) — 8 x 50 = the 400-triple scale.
SCALE = (8, 50)

#: Fraction of the stream arriving as the ingest batch.
INGEST_FRACTION = 0.1

#: Best-of-N wall times to shave scheduler noise.
REPEATS = 3

#: The acceptance floor: warm ingest-then-infer vs cold re-inference.
MIN_SPEEDUP = 3.0


def _decisions(report):
    return json.dumps(
        {
            "canonicalization": report.canonicalization.to_dict(),
            "linking": report.linking.to_dict(),
        },
        sort_keys=True,
    )


def _cold_batch_job(workload):
    """One cold re-inference over the union: what CESI/COMBO-style batch
    canonicalization pays on every refresh."""
    start = time.perf_counter()
    side = workload.side_information(workload.all_triples)
    report = (
        JOCLEngine.builder()
        .with_side_information(side)
        .with_config(CONFIG)
        .build()
        .run_joint()
    )
    return time.perf_counter() - start, report


def _warm_ingest(workload, runtime_factory):
    """One warmed engine absorbing the arrival batch (the timed part is
    ingest + re-inference; the warm-up inference is the steady state a
    serving engine is already in)."""
    engine = workload.engine(CONFIG, runtime_factory())
    engine.run_joint()  # steady state
    start = time.perf_counter()
    for batch in workload.batches:
        engine.ingest(batch)
    report = engine.run_joint()
    return time.perf_counter() - start, report, engine.last_profile()


def test_incremental_ingest_speedup_and_equivalence(benchmark):
    n_shards, per_shard = SCALE
    workload = generate_streaming_ingest(
        StreamingIngestConfig(
            n_shards=n_shards,
            triples_per_shard=per_shard,
            ingest_fraction=INGEST_FRACTION,
            seed=7,
        )
    )
    payload = {
        "schema_version": 1,
        "workload": "streaming-ingest over reverb45k-sharded "
        "(repeat-mention arrivals, shard-major stream)",
        "generated_by": "benchmarks/test_incremental_ingest.py",
        "scale": {
            "n_shards": n_shards,
            "n_triples": len(workload.all_triples),
            "seed_triples": len(workload.seed_triples),
            "ingest_batch": sum(len(batch) for batch in workload.batches),
        },
        "lbp": {
            "iterations_cap": CONFIG.lbp_iterations,
            "tolerance": CONFIG.lbp_tolerance,
            "repeats_best_of": REPEATS,
        },
        "runs": [],
    }

    results = {}

    def _sweep():
        cold_walls, cold_report = [], None
        for _ in range(REPEATS):
            wall, cold_report = _cold_batch_job(workload)
            cold_walls.append(wall)
        results["cold"] = (min(cold_walls), cold_report, None)
        for label, factory in (
            ("incremental", IncrementalRuntime),
            ("incremental-warm", lambda: IncrementalRuntime(warm_start=True)),
        ):
            walls, report, profile = [], None, None
            for _ in range(REPEATS):
                wall, report, profile = _warm_ingest(workload, factory)
                walls.append(wall)
            results[label] = (min(walls), report, profile)
        return results

    benchmark.pedantic(_sweep, rounds=1, iterations=1)

    cold_wall, cold_report, _ = results["cold"]
    lines = [
        f"Incremental ingest — {payload['scale']['ingest_batch']}-triple "
        f"(10%) batch at {payload['scale']['n_triples']} triples "
        f"(best of {REPEATS}):",
        f"  cold re-inference        {cold_wall * 1e3:7.1f} ms  x1.00",
    ]
    payload["runs"].append(
        {"mode": "cold", "wall_time_s": round(cold_wall, 6), "speedup": 1.0}
    )
    for label in ("incremental", "incremental-warm"):
        wall, report, profile = results[label]
        speedup = cold_wall / wall
        payload["runs"].append(
            {
                "mode": label,
                "wall_time_s": round(wall, 6),
                "speedup": round(speedup, 3),
                "n_components": profile.n_components,
                "reused_components": profile.reused_components,
                "recomputed_components": profile.recomputed_components,
                "decisions_identical_to_cold": _decisions(report)
                == _decisions(cold_report),
            }
        )
        lines.append(
            f"  {label:<24} {wall * 1e3:7.1f} ms  x{speedup:.2f}  "
            f"(reused {profile.reused_components}/{profile.n_components} "
            f"components)"
        )
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    record_result("\n".join(lines))

    # --- the hard gates -------------------------------------------------
    wall, report, profile = results["incremental"]
    assert _decisions(report) == _decisions(cold_report), (
        "incremental ingest-then-infer decisions diverge from the cold "
        "batch run"
    )
    assert profile.reused_components > 0, (
        "incremental run reused no components; the workload should leave "
        "most shards untouched"
    )
    assert cold_wall >= MIN_SPEEDUP * wall, (
        f"incremental ingest-then-infer only {cold_wall / wall:.2f}x faster "
        f"than cold re-inference ({wall:.3f}s vs {cold_wall:.3f}s); "
        f"the acceptance floor is {MIN_SPEEDUP}x"
    )


def test_multi_batch_incremental_equivalence():
    """Two arrival batches with an inference between each: decisions at
    every stage match the cold batch run (the CI smoke gate)."""
    workload = generate_streaming_ingest(
        StreamingIngestConfig(
            n_shards=4, triples_per_shard=25, n_batches=2, seed=11
        )
    )
    engine = workload.engine(CONFIG, IncrementalRuntime())
    engine.run_joint()
    triples = list(workload.seed_triples)
    reused_total = 0
    for batch in workload.batches:
        engine.ingest(batch)
        report = engine.run_joint()
        triples += list(batch)
        side = workload.side_information(triples)
        cold = (
            JOCLEngine.builder()
            .with_side_information(side)
            .with_config(CONFIG)
            .build()
            .run_joint()
        )
        assert _decisions(report) == _decisions(cold)
        reused_total += engine.last_profile().reused_components
    assert reused_total > 0
    record_result(
        "Incremental equivalence — 2-batch streaming ingest matches cold "
        f"batch decisions at every stage ({reused_total} components reused)"
    )
