"""Table 3: OKB entity linking on ReVerb45K and NYTimes2018.

Falcon, EARL, Spotlight, TagMe, KBPearl and JOCL, scored by accuracy on
the gold subject links.  Shape: JOCL is the most accurate system on
both datasets; TagMe (coherence voting with almost no context) trails.
"""

from conftest import record_result

from repro.baselines import (
    EarlBaseline,
    FalconBaseline,
    KBPearlBaseline,
    SpotlightBaseline,
    TagmeBaseline,
)
from repro.metrics import linking_accuracy
from repro.pipeline.experiment import LinkingRow, format_table, run_linking_systems

LINKERS = [
    FalconBaseline(),
    EarlBaseline(),
    SpotlightBaseline(),
    TagmeBaseline(),
    KBPearlBaseline(),
]


def _table(side, gold_links, output, title):
    rows = run_linking_systems(LINKERS, side, gold_links, "entity")
    rows.append(
        LinkingRow("JOCL", linking_accuracy(output.entity_links, gold_links))
    )
    record_result(format_table(title, rows))
    return rows


def test_table3_reverb45k(benchmark, reverb, reverb_side, reverb_output):
    rows = benchmark.pedantic(
        _table,
        args=(
            reverb_side,
            reverb.gold.entity_links,
            reverb_output,
            "Table 3 — OKB entity linking, ReVerb45K-shaped",
        ),
        rounds=1,
        iterations=1,
    )
    by_system = {row.system: row.accuracy for row in rows}
    jocl = by_system.pop("JOCL")
    assert jocl > max(by_system.values()), by_system
    assert by_system["TagMe"] == min(by_system.values()), by_system


def test_table3_nytimes2018(benchmark, nytimes, nytimes_side, nytimes_output):
    rows = benchmark.pedantic(
        _table,
        args=(
            nytimes_side,
            nytimes.gold.entity_links,
            nytimes_output,
            "Table 3 — OKB entity linking, NYTimes2018-shaped",
        ),
        rounds=1,
        iterations=1,
    )
    by_system = {row.system: row.accuracy for row in rows}
    jocl = by_system.pop("JOCL")
    assert jocl > max(by_system.values()), by_system
