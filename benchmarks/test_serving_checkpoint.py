"""Checkpoint/serving bench: restore vs cold rebuild, batched serving.

The ISSUE 4 acceptance gate: at the 400-triple scale, restoring an
engine from a :class:`repro.persist.FileStateStore` checkpoint
(``JOCLEngine.load`` + first joint inference, which splices the
restored runtime's converged components) must be >= 3x faster than the
cold rebuild every process restart used to pay (side-info build — AMIE
mining, KBP categorization — graph build, full LBP), with *identical*
decisions on both store backends.

Also measured: checkpoint save cost per backend, and micro-batched
:class:`repro.serving.JOCLService` resolve throughput under 8 threads
on the **windowed** batching path vs the naive single-threaded
per-call loop.  Raw req/s is recorded, not gated (the GIL bounds
pure-Python gains) — but the *coalescing* is gated: the batching
window must put a material fraction of concurrent requests into
shared decode batches, so the 66/720-coalesced regression this repo
once shipped (eager leaders draining batches of one) can never
silently return.

Results land in ``benchmarks/BENCH_serving.json`` (machine-readable,
tracked across PRs and uploaded as a CI artifact) alongside the
human-readable ``results.txt``.
"""

import json
import threading
import time
from pathlib import Path

from conftest import record_result

from repro.api import JOCLEngine
from repro.core import JOCLConfig
from repro.datasets import StreamingIngestConfig, generate_streaming_ingest
from repro.persist import FileStateStore, SQLiteStateStore
from repro.runtime import IncrementalRuntime
from repro.serving import JOCLService

BENCH_JSON_PATH = Path(__file__).parent / "BENCH_serving.json"

CONFIG = JOCLConfig(lbp_iterations=20)

#: (n_shards, triples per shard) — the 100- and 400-triple scales.
SCALES = ((2, 50), (8, 50))

#: Best-of-N wall times to shave scheduler noise.
REPEATS = 3

#: The acceptance floor at the largest scale: restore vs cold rebuild.
MIN_RESTORE_SPEEDUP = 3.0

N_RESOLVER_THREADS = 8

#: The serving batching window and the coalescing floor it is gated on:
#: at least this fraction of threaded requests must land in shared
#: (size > 1) decode batches.  The eager path historically managed
#: 66/720 ~= 9%; the window holds ~100% under this contention.
SERVING_WINDOW_MS = 2.0
MIN_COALESCED_FRACTION = 0.5


def _decisions(report):
    return json.dumps(
        {
            "canonicalization": report.canonicalization.to_dict(),
            "linking": report.linking.to_dict(),
        },
        sort_keys=True,
    )


def _cold_rebuild(workload):
    """What a restart without checkpoints pays: rebuild side info (AMIE,
    KBP, candidate indexes), build the graph, run full LBP."""
    start = time.perf_counter()
    side = workload.side_information()
    report = (
        JOCLEngine.builder()
        .with_side_information(side)
        .with_config(CONFIG)
        .build()
        .run_joint()
    )
    return time.perf_counter() - start, report


def _restore(store):
    """What a restart with checkpoints pays: load + first inference
    (which splices the restored converged components)."""
    start = time.perf_counter()
    engine = JOCLEngine.load(store)
    report = engine.run_joint()
    return time.perf_counter() - start, report, engine.last_profile()


def _throughput_suite(workload):
    """Naive serial resolve loop vs micro-batched threaded service."""
    mentions = []
    for triple in workload.seed_triples:
        mentions.append((triple.subject, "np"))
        mentions.append((triple.predicate, "relation"))
    naive_engine = workload.engine(CONFIG, IncrementalRuntime())
    start = time.perf_counter()
    naive = [naive_engine.resolve(m, k).to_dict() for m, k in mentions]
    naive_wall = time.perf_counter() - start

    service = JOCLService(
        workload.engine(CONFIG, IncrementalRuntime()),
        max_batch_size=32,
        batch_window_ms=SERVING_WINDOW_MS,
    )
    answers = [None] * len(mentions)
    errors = []

    def worker(offset):
        try:
            for index in range(offset, len(mentions), N_RESOLVER_THREADS):
                mention, kind = mentions[index]
                answers[index] = service.resolve(mention, kind).to_dict()
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(offset,))
        for offset in range(N_RESOLVER_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service_wall = time.perf_counter() - start
    assert not errors, errors
    assert answers == naive, (
        "threaded JOCLService answers diverge from the serial resolve loop"
    )
    stats = service.serving_stats()
    return {
        "n_requests": len(mentions),
        "naive_wall_s": round(naive_wall, 6),
        "naive_req_per_s": round(len(mentions) / naive_wall, 1),
        "service_wall_s": round(service_wall, 6),
        "service_req_per_s": round(len(mentions) / service_wall, 1),
        "threads": N_RESOLVER_THREADS,
        "batch_window_ms": SERVING_WINDOW_MS,
        "decode_batches": stats.batches,
        "coalesced_requests": stats.coalesced_requests,
        "coalesced_fraction": round(
            stats.coalesced_requests / len(mentions), 4
        ),
        "deduplicated_requests": stats.deduplicated_requests,
        "max_batch": stats.max_batch,
        "p50_ms": round(stats.p50_ms, 3),
        "p95_ms": round(stats.p95_ms, 3),
        "p99_ms": round(stats.p99_ms, 3),
        "answers_identical": True,
    }


def test_checkpoint_restore_vs_cold_rebuild(benchmark, tmp_path):
    payload = {
        "schema_version": 1,
        "workload": "streaming-ingest seed OKB over reverb45k-sharded",
        "generated_by": "benchmarks/test_serving_checkpoint.py",
        "lbp": {
            "iterations_cap": CONFIG.lbp_iterations,
            "tolerance": CONFIG.lbp_tolerance,
            "repeats_best_of": REPEATS,
        },
        "checkpoint": [],
        "serving": None,
    }
    results = {}

    def _sweep():
        for n_shards, per_shard in SCALES:
            workload = generate_streaming_ingest(
                StreamingIngestConfig(
                    n_shards=n_shards, triples_per_shard=per_shard, seed=7
                )
            )
            n_triples = len(workload.seed_triples)
            # The engine being checkpointed: serving steady state.
            engine = workload.engine(CONFIG, IncrementalRuntime())
            original = engine.run_joint()

            cold_walls = []
            for _ in range(REPEATS):
                cold_wall, cold_report = _cold_rebuild(workload)
                cold_walls.append(cold_wall)

            stores = {
                "file": FileStateStore(
                    tmp_path / f"ckpt-{n_triples}", history=REPEATS + 1
                ),
                "sqlite": SQLiteStateStore(
                    tmp_path / f"ckpt-{n_triples}.db", history=REPEATS + 1
                ),
            }
            per_backend = {}
            for backend, store in stores.items():
                save_walls, restore_walls = [], []
                report = profile = None
                for _ in range(REPEATS):
                    start = time.perf_counter()
                    engine.save(store)
                    save_walls.append(time.perf_counter() - start)
                    wall, report, profile = _restore(store)
                    restore_walls.append(wall)
                assert _decisions(report) == _decisions(original), (
                    f"{backend} restore decisions diverge from the "
                    f"original engine"
                )
                per_backend[backend] = {
                    "save_wall_s": min(save_walls),
                    "restore_wall_s": min(restore_walls),
                    "reused_components": profile.reused_components,
                    "n_components": profile.n_components,
                }
            results[n_triples] = {
                "cold_wall_s": min(cold_walls),
                "cold_report": cold_report,
                "original": original,
                "backends": per_backend,
            }
        results["serving"] = _throughput_suite(
            generate_streaming_ingest(
                StreamingIngestConfig(
                    n_shards=SCALES[-1][0],
                    triples_per_shard=SCALES[-1][1],
                    seed=7,
                )
            )
        )
        return results

    benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        f"Durable engines — checkpoint restore vs cold rebuild "
        f"(best of {REPEATS}):"
    ]
    largest = None
    for n_triples, entry in sorted(
        (k, v) for k, v in results.items() if isinstance(k, int)
    ):
        cold_wall = entry["cold_wall_s"]
        row = {"n_triples": n_triples, "cold_wall_s": round(cold_wall, 6)}
        for backend, stats in entry["backends"].items():
            speedup = cold_wall / stats["restore_wall_s"]
            row[backend] = {
                "save_wall_s": round(stats["save_wall_s"], 6),
                "restore_wall_s": round(stats["restore_wall_s"], 6),
                "restore_speedup_vs_cold": round(speedup, 3),
                "reused_components": stats["reused_components"],
                "n_components": stats["n_components"],
            }
            lines.append(
                f"  {n_triples:>4} triples  {backend:<6} "
                f"save {stats['save_wall_s'] * 1e3:7.1f} ms   "
                f"restore {stats['restore_wall_s'] * 1e3:7.1f} ms  "
                f"x{speedup:5.2f} vs cold {cold_wall * 1e3:7.1f} ms  "
                f"(spliced {stats['reused_components']}"
                f"/{stats['n_components']})"
            )
        payload["checkpoint"].append(row)
        largest = entry
    serving = results["serving"]
    payload["serving"] = serving
    lines.append(
        f"  serving: naive loop {serving['naive_req_per_s']:8.1f} req/s   "
        f"windowed service {serving['service_req_per_s']:8.1f} req/s  "
        f"({serving['n_requests']} requests, "
        f"{serving['decode_batches']} decode batches, "
        f"{serving['coalesced_requests']} coalesced, "
        f"max batch {serving['max_batch']}, "
        f"p99 {serving['p99_ms']:.1f} ms)"
    )
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    record_result("\n".join(lines))

    # --- the hard gates -------------------------------------------------
    for backend, stats in largest["backends"].items():
        assert stats["reused_components"] == stats["n_components"], (
            f"{backend} restore re-ran LBP on "
            f"{stats['n_components'] - stats['reused_components']} "
            f"components; restored runtime state should splice all of them"
        )
    assert serving["coalesced_fraction"] >= MIN_COALESCED_FRACTION, (
        f"only {serving['coalesced_requests']}/{serving['n_requests']} "
        f"threaded requests landed in shared decode batches "
        f"({serving['coalesced_fraction']:.1%}); the windowed serving "
        f"path must coalesce >= {MIN_COALESCED_FRACTION:.0%} — the eager "
        f"batches-of-one regression is back"
    )
    file_stats = largest["backends"]["file"]
    speedup = largest["cold_wall_s"] / file_stats["restore_wall_s"]
    assert speedup >= MIN_RESTORE_SPEEDUP, (
        f"checkpoint restore only {speedup:.2f}x faster than cold rebuild "
        f"({file_stats['restore_wall_s']:.3f}s vs "
        f"{largest['cold_wall_s']:.3f}s); the acceptance floor is "
        f"{MIN_RESTORE_SPEEDUP}x"
    )
