"""Table 4: effect of the interaction between the two tasks.

JOCL_cano (canonicalization factors only), JOCL_link (linking factors
only) and the full framework on ReVerb45K.  Shape: the full framework
beats both single-task variants on their own metric — the interaction
(consistency factors + joint decoding) helps both tasks.
"""

import contextlib

from conftest import BENCH_CONFIG, record_result

from repro.core import JOCL
from repro.core.variants import jocl_cano_config, jocl_link_config
from repro.metrics import evaluate_clustering, linking_accuracy
from repro.pipeline.experiment import CanonicalizationRow, format_table


def _run_variant(config, reverb, reverb_side):
    from repro.core.learning import GoldAnnotations

    model = JOCL(config)
    # A variant graph may carry no mappable gold; infer untrained then.
    with contextlib.suppress(ValueError):
        model.fit(
            reverb.side_information("validation"),
            GoldAnnotations.from_triples(reverb.validation_triples),
        )
    return model.infer(reverb_side)


def _table(reverb, reverb_side, reverb_output):
    gold = reverb.gold
    rows = []
    outputs = {
        "JOCL_cano": _run_variant(jocl_cano_config(BENCH_CONFIG), reverb, reverb_side),
        "JOCL_link": _run_variant(jocl_link_config(BENCH_CONFIG), reverb, reverb_side),
        "JOCL": reverb_output,
    }
    accuracies = {}
    for name, output in outputs.items():
        report = evaluate_clustering(output.np_clusters, gold.np_clusters)
        accuracy = linking_accuracy(output.entity_links, gold.entity_links)
        accuracies[name] = accuracy
        rows.append(
            CanonicalizationRow(
                system=f"{name} (acc={accuracy:.3f})",
                macro_f1=report.macro.f1,
                micro_f1=report.micro.f1,
                pairwise_f1=report.pairwise.f1,
                average_f1=report.average_f1,
            )
        )
    record_result(
        format_table(
            "Table 4 — single-task variants vs full JOCL, ReVerb45K-shaped",
            rows,
            highlight=None,
        )
    )
    f1_by_name = {
        name: evaluate_clustering(output.np_clusters, gold.np_clusters).average_f1
        for name, output in outputs.items()
    }
    return f1_by_name, accuracies


def test_table4_interaction(benchmark, reverb, reverb_side, reverb_output):
    f1_by_name, accuracies = benchmark.pedantic(
        _table, args=(reverb, reverb_side, reverb_output), rounds=1, iterations=1
    )
    # Canonicalization: full JOCL >= JOCL_cano (interaction helps).
    assert f1_by_name["JOCL"] > f1_by_name["JOCL_cano"], f1_by_name
    # Linking: full JOCL >= JOCL_link.
    assert accuracies["JOCL"] >= accuracies["JOCL_link"] - 1e-9, accuracies
    # The cano-only variant produces no links at all.
    assert accuracies["JOCL_cano"] == 0.0
