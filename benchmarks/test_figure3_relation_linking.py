"""Figure 3: OKB relation linking on ReVerb45K.

Falcon, EARL, KBPearl, ReMatch and JOCL, scored by accuracy on the gold
relation links.  Shape assertions: JOCL is the most accurate, and —
the paper's observation — relation linking is harder than entity
linking for every joint system.
"""

from conftest import record_result

from repro.baselines import (
    EarlBaseline,
    FalconBaseline,
    KBPearlBaseline,
    RematchBaseline,
)
from repro.metrics import linking_accuracy
from repro.pipeline.experiment import LinkingRow, format_table, run_linking_systems

LINKERS = [FalconBaseline(), EarlBaseline(), KBPearlBaseline(), RematchBaseline()]


def _figure(side, gold_links, output):
    rows = run_linking_systems(LINKERS, side, gold_links, "relation")
    rows.append(
        LinkingRow("JOCL", linking_accuracy(output.relation_links, gold_links))
    )
    record_result(
        format_table("Figure 3 — OKB relation linking, ReVerb45K-shaped", rows)
    )
    return rows


def test_figure3_relation_linking(benchmark, reverb, reverb_side, reverb_output):
    rows = benchmark.pedantic(
        _figure,
        args=(reverb_side, reverb.gold.relation_links, reverb_output),
        rounds=1,
        iterations=1,
    )
    by_system = {row.system: row.accuracy for row in rows}
    jocl = by_system.pop("JOCL")
    assert jocl >= max(by_system.values()), by_system


def test_relation_linking_harder_than_entity_linking(
    reverb, reverb_side, reverb_output
):
    """Section 4.3.2: 'the performance of all the methods on this task is
    not well compared with the OKB entity linking task'."""
    for system in (FalconBaseline(), EarlBaseline(), KBPearlBaseline()):
        result = system.link(reverb_side)
        entity = linking_accuracy(result.entity_links, reverb.gold.entity_links)
        relation = linking_accuracy(result.relation_links, reverb.gold.relation_links)
        assert relation < entity, system.name
    jocl_entity = linking_accuracy(
        reverb_output.entity_links, reverb.gold.entity_links
    )
    jocl_relation = linking_accuracy(
        reverb_output.relation_links, reverb.gold.relation_links
    )
    assert jocl_relation < jocl_entity
