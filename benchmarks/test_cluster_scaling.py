"""Cluster scaling bench: shard count vs ingest-to-refresh wall time.

The ISSUE 5 acceptance gates, on a 4-world sharded-ReVerb45K workload
at the 400-triple scale:

* **equivalence** — a :class:`repro.cluster.ShardedEngine` (1, 2 and 4
  shards, vocabulary-affinity routing, corpus-global IDF) must make
  decisions *identical* to one engine over the union, at build time
  and after the routed arrival batch;
* **scaling** — ingest-to-refreshed-decisions wall time
  (``cluster.ingest(batch)`` + ``cluster.run_joint()``) must *improve*
  with shard count and the 4-shard cluster must beat the single
  default engine (what a deployment without the cluster runs: one
  ``SerialRuntime`` engine re-inferring the whole graph) by >= 2x.
  The sharding win is blast-radius containment: arrivals concentrate on
  the shards that own their vocabulary, every other shard keeps its
  cached decoding.

Results land in ``benchmarks/BENCH_cluster.json`` (machine-readable,
uploaded as a CI artifact) alongside the human-readable
``results.txt``.
"""

import json
import time
from pathlib import Path

from conftest import record_result

from repro.api import JOCLEngine
from repro.cluster import ShardedEngine, VocabularyAffinityRouter
from repro.core import JOCLConfig
from repro.datasets import (
    StreamingIngestConfig,
    generate_streaming_ingest,
    shard_partition,
)
from repro.runtime import IncrementalRuntime, SerialRuntime

BENCH_JSON_PATH = Path(__file__).parent / "BENCH_cluster.json"

CONFIG = JOCLConfig(lbp_iterations=20)

#: 4 worlds x 100 triples: the ~400-triple scale of the gate.
WORKLOAD = StreamingIngestConfig(
    n_shards=4,
    triples_per_shard=100,
    entities_per_shard=30,
    facts_per_shard=65,
    seed=7,
)

SHARD_COUNTS = (1, 2, 4)

#: Best-of-N wall times to shave scheduler noise.
REPEATS = 3

#: The acceptance floor: 4-shard ingest-to-refresh vs the single
#: default engine.
MIN_INGEST_SPEEDUP = 2.0


def _decisions(canonicalization, linking):
    return json.dumps(
        {"c": canonicalization.to_dict(), "l": linking.to_dict()},
        sort_keys=True,
    )


def _grouped_seeds(workload, n_shards):
    """The 4 world partitions folded onto ``n_shards`` cluster shards."""
    parts = shard_partition(workload.seed_triples)
    groups = [[] for _ in range(n_shards)]
    for index, part in enumerate(parts):
        groups[index % n_shards].extend(part)
    return groups


def _build_cluster(workload, n_shards):
    dataset = workload.dataset
    return (
        ShardedEngine.builder()
        .with_ckb(dataset.kb)
        .with_anchors(dataset.anchors)
        .with_ppdb(dataset.ppdb)
        .with_config(CONFIG)
        .with_router(VocabularyAffinityRouter())
        .with_shard_triples(_grouped_seeds(workload, n_shards))
        .with_runtime_factory(IncrementalRuntime)
        .build()
    )


def _build_single(workload, runtime):
    dataset = workload.dataset
    return (
        JOCLEngine.builder()
        .with_ckb(dataset.kb)
        .with_anchors(dataset.anchors)
        .with_ppdb(dataset.ppdb)
        .with_config(CONFIG)
        .with_triples(workload.seed_triples)
        .with_runtime(runtime)
        .build()
    )


def test_cluster_equivalence_and_ingest_scaling(benchmark):
    workload = generate_streaming_ingest(WORKLOAD)
    batch = workload.batches[0]
    payload = {
        "schema_version": 1,
        "workload": (
            f"{WORKLOAD.n_shards} worlds x {WORKLOAD.triples_per_shard} "
            f"triples (sharded reverb45k), {len(batch)}-triple arrival batch"
        ),
        "generated_by": "benchmarks/test_cluster_scaling.py",
        "lbp": {
            "iterations_cap": CONFIG.lbp_iterations,
            "tolerance": CONFIG.lbp_tolerance,
            "repeats_best_of": REPEATS,
        },
        "single_engine": {},
        "clusters": [],
    }
    results = {}

    def _sweep():
        # The reference: one engine over the union (default serial
        # runtime — what a deployment without the cluster runs), plus
        # the stronger incremental single-engine baseline.
        reference = _build_single(workload, SerialRuntime())
        reference.run_joint()
        for triple_batch in (batch,):
            reference.ingest(triple_batch)
        seed_reference = _build_single(workload, SerialRuntime())
        seed_report = seed_reference.run_joint()
        grown_report = reference.run_joint()
        singles = {}
        for label, runtime_factory in (
            ("serial", SerialRuntime),
            ("incremental", IncrementalRuntime),
        ):
            best = float("inf")
            for _ in range(REPEATS):
                engine = _build_single(workload, runtime_factory())
                engine.run_joint()
                start = time.perf_counter()
                engine.ingest(batch)
                engine.run_joint()
                best = min(best, time.perf_counter() - start)
            singles[label] = best
        clusters = {}
        for n_shards in SHARD_COUNTS:
            best = float("inf")
            seed_identical = grown_identical = None
            routed = None
            for _ in range(REPEATS):
                cluster = _build_cluster(workload, n_shards)
                report = cluster.run_joint()
                seed_identical = _decisions(
                    report.canonicalization, report.linking
                ) == _decisions(
                    seed_report.canonicalization, seed_report.linking
                )
                start = time.perf_counter()
                ingest_report = cluster.ingest(batch)
                grown = cluster.run_joint()
                best = min(best, time.perf_counter() - start)
                routed = ingest_report.per_shard
                grown_identical = _decisions(
                    grown.canonicalization, grown.linking
                ) == _decisions(
                    grown_report.canonicalization, grown_report.linking
                )
            clusters[n_shards] = {
                "ingest_refresh_wall_s": best,
                "seed_identical": seed_identical,
                "post_ingest_identical": grown_identical,
                "routed_per_shard": list(routed),
            }
        results["singles"] = singles
        results["clusters"] = clusters
        results["n_seed"] = len(workload.seed_triples)
        results["n_batch"] = len(batch)
        return results

    benchmark.pedantic(_sweep, rounds=1, iterations=1)

    singles = results["singles"]
    clusters = results["clusters"]
    payload["single_engine"] = {
        label: {"ingest_refresh_wall_s": round(wall, 6)}
        for label, wall in singles.items()
    }
    lines = [
        f"Cluster scaling — ingest-to-refresh at "
        f"{results['n_seed']} seed + {results['n_batch']} arrival triples "
        f"(best of {REPEATS}):",
        f"  single engine  serial      "
        f"{singles['serial'] * 1e3:7.1f} ms",
        f"  single engine  incremental "
        f"{singles['incremental'] * 1e3:7.1f} ms",
    ]
    for n_shards in SHARD_COUNTS:
        entry = clusters[n_shards]
        speedup = singles["serial"] / entry["ingest_refresh_wall_s"]
        payload["clusters"].append(
            {
                "n_shards": n_shards,
                "ingest_refresh_wall_s": round(
                    entry["ingest_refresh_wall_s"], 6
                ),
                "speedup_vs_single_serial": round(speedup, 3),
                "seed_identical": entry["seed_identical"],
                "post_ingest_identical": entry["post_ingest_identical"],
                "routed_per_shard": entry["routed_per_shard"],
            }
        )
        lines.append(
            f"  cluster        {n_shards} shard(s)  "
            f"{entry['ingest_refresh_wall_s'] * 1e3:7.1f} ms  "
            f"x{speedup:5.2f} vs serial  "
            f"(routed {entry['routed_per_shard']}, "
            f"identical seed={entry['seed_identical']} "
            f"ingest={entry['post_ingest_identical']})"
        )
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    record_result("\n".join(lines))

    # --- the hard gates -------------------------------------------------
    for n_shards in SHARD_COUNTS:
        entry = clusters[n_shards]
        assert entry["seed_identical"], (
            f"{n_shards}-shard cluster seed decisions diverge from the "
            f"single-engine run"
        )
        assert entry["post_ingest_identical"], (
            f"{n_shards}-shard cluster post-ingest decisions diverge from "
            f"the single-engine run"
        )
    four = clusters[4]["ingest_refresh_wall_s"]
    two = clusters[2]["ingest_refresh_wall_s"]
    one = clusters[1]["ingest_refresh_wall_s"]
    # Sharding must improve ingest-to-refresh.  Two gates, robust to
    # single-CPU CI scheduler noise: the best multi-shard time strictly
    # beats one shard, and the 4-shard time is at worst within 15% of
    # it (the structural win is blast-radius containment, whose 2-shard
    # and 4-shard times are near-identical when one shard absorbs the
    # whole batch).
    assert min(two, four) < one, (
        f"ingest-to-refresh did not improve with shard count: "
        f"2 shards {two:.3f}s / 4 shards {four:.3f}s vs 1 shard {one:.3f}s"
    )
    assert four <= one * 1.15, (
        f"4-shard ingest-to-refresh regressed past the noise margin: "
        f"{four:.3f}s vs 1 shard {one:.3f}s"
    )
    speedup = singles["serial"] / four
    assert speedup >= MIN_INGEST_SPEEDUP, (
        f"4-shard ingest-to-refresh only {speedup:.2f}x faster than the "
        f"single default engine ({four:.3f}s vs "
        f"{singles['serial']:.3f}s); the acceptance floor is "
        f"{MIN_INGEST_SPEEDUP}x"
    )
