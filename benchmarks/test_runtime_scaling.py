"""Runtime scaling bench: wall time per OKB size x execution runtime.

Runs the sharded (naturally decomposable) workload at growing OKB sizes
under every shipped :mod:`repro.runtime` and

* hard-asserts that all runtimes produce *equivalent decisions* (the
  CI gate for the distributed-inference claim of Section 3.4),
* hard-asserts byte-identical ``EngineReport`` payloads between
  :class:`SerialRuntime` and :class:`ParallelRuntime` on the trained
  ReVerb45K-shaped fixture,
* records the perf trajectory into ``benchmarks/BENCH_runtime.json``
  (machine-readable, tracked across PRs) alongside the human-readable
  ``results.txt``.
"""

import json
import time
from pathlib import Path

from conftest import BENCH_CONFIG, record_result

from repro.core import JOCLConfig
from repro.core.inference import decode
from repro.core.model import JOCL
from repro.datasets import ShardedOKBConfig, generate_sharded_reverb45k
from repro.runtime import ParallelRuntime, PartitionedRuntime, SerialRuntime

BENCH_JSON_PATH = Path(__file__).parent / "BENCH_runtime.json"

#: (nominal OKB triples, shards) — every shard is an independent world.
SIZES = ((100, 4), (200, 6), (400, 8))

#: Best-of-N wall times to shave scheduler noise.
REPEATS = 3

RUNTIMES = (
    SerialRuntime(),
    PartitionedRuntime(),
    ParallelRuntime(max_workers=2),
    ParallelRuntime(max_workers=4),
)


def _workload(n_triples: int, n_shards: int):
    per_shard = n_triples // n_shards
    dataset = generate_sharded_reverb45k(
        ShardedOKBConfig(
            n_shards=n_shards,
            triples_per_shard=per_shard,
            entities_per_shard=max(12, per_shard // 3),
            facts_per_shard=max(26, (per_shard * 2) // 3),
            relations_per_shard=24 // n_shards,
            validation_fraction=0.0,
            seed=7,
        )
    )
    side = dataset.side_information("all")
    return dataset, side


def _row(runtime) -> dict:
    workers = getattr(runtime, "max_workers", 1)
    backend = getattr(runtime, "backend", None)
    label = runtime.name
    if runtime.name == "parallel":
        label = f"parallel-w{workers}"
    return {"runtime": runtime.name, "label": label, "workers": workers,
            "backend": backend}


def test_runtime_scaling_and_equivalence(benchmark):
    config = JOCLConfig(lbp_iterations=20)
    payload = {
        "schema_version": 1,
        "workload": "reverb45k-sharded (independent worlds, disjoint relations)",
        "generated_by": "benchmarks/test_runtime_scaling.py",
        "lbp": {
            "iterations_cap": config.lbp_iterations,
            "tolerance": config.lbp_tolerance,
            "repeats_best_of": REPEATS,
        },
        "sizes": [],
    }
    lines = ["Runtime scaling — wall time per OKB size x runtime (best of "
             f"{REPEATS}):"]

    def _sweep():
        for nominal, n_shards in SIZES:
            dataset, side = _workload(nominal, n_shards)
            model = JOCL(config)
            graph, index, builder = model.build_graph(side)
            task = model.plan_inference(graph, builder)
            baseline_output = None
            serial_wall = None
            entry = {
                "n_triples_nominal": nominal,
                "n_triples": len(dataset.triples),
                "n_shards": n_shards,
                "n_variables": len(graph.variables),
                "n_factors": len(graph.factors),
                "runs": [],
            }
            for runtime in RUNTIMES:
                walls, outcome = [], None
                for _ in range(REPEATS):
                    start = time.perf_counter()
                    outcome = runtime.run(task)
                    walls.append(time.perf_counter() - start)
                wall = min(walls)
                output = decode(outcome.result, index, config)
                if baseline_output is None:
                    baseline_output = output
                    serial_wall = wall
                else:
                    # The CI equivalence gate: every runtime must make
                    # the same canonicalization + linking decisions.
                    assert output == baseline_output, (
                        f"{runtime.name} decisions diverge from serial at "
                        f"{nominal} triples"
                    )
                row = _row(runtime)
                row.update(
                    backend=outcome.profile.backend,  # effective, not configured
                    wall_time_s=round(wall, 6),
                    speedup_vs_serial=round(serial_wall / wall, 3),
                    n_components=outcome.profile.n_components,
                    iterations=outcome.profile.iterations,
                    converged=outcome.profile.converged,
                )
                entry["runs"].append(row)
                lines.append(
                    f"  {nominal:>4} triples  {row['label']:<12} "
                    f"{wall * 1e3:7.1f} ms  x{row['speedup_vs_serial']:.2f}  "
                    f"({row['n_components']} components)"
                )
            payload["sizes"].append(entry)
        return payload

    benchmark.pedantic(_sweep, rounds=1, iterations=1)
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    record_result("\n".join(lines))

    largest = payload["sizes"][-1]
    serial_wall = largest["runs"][0]["wall_time_s"]
    partitioned_wall = largest["runs"][1]["wall_time_s"]
    parallel_best = min(run["wall_time_s"] for run in largest["runs"][2:])
    # Partitioned execution does strictly less message passing than the
    # whole-graph run (per-component early stopping), and the parallel
    # runtime must preserve that win at >= 2 workers.  The decision
    # equivalence above is the hard CI gate; these bounds only catch a
    # catastrophic runtime-overhead regression while tolerating the
    # wall-clock jitter of shared CI runners (the committed
    # BENCH_runtime.json records the actual speedups).
    assert partitioned_wall < serial_wall * 1.25, (
        f"partitioned LBP grossly slower than whole-graph LBP at "
        f"{largest['n_triples']} triples: {partitioned_wall:.3f}s vs "
        f"{serial_wall:.3f}s"
    )
    assert parallel_best < serial_wall * 1.25, (
        f"parallel LBP (>=2 workers) grossly slower than whole-graph LBP "
        f"at {largest['n_triples']} triples: {parallel_best:.3f}s vs "
        f"{serial_wall:.3f}s"
    )


def test_parallel_report_byte_identical_on_reverb(reverb_side, trained_weights):
    """Acceptance: ParallelRuntime emits byte-identical EngineReport
    payloads to SerialRuntime on the trained ReVerb45K-shaped fixture."""
    from repro.api import JOCLEngine

    def _report(runtime):
        return (
            JOCLEngine.builder()
            .with_side_information(reverb_side)
            .with_config(BENCH_CONFIG)
            .with_trained_weights(trained_weights)
            .with_runtime(runtime)
            .build()
            .run_joint()
        )

    serial = _report(SerialRuntime())
    parallel = _report(ParallelRuntime(max_workers=4))
    serial_bytes = json.dumps(serial.to_dict(), sort_keys=True)
    parallel_bytes = json.dumps(parallel.to_dict(), sort_keys=True)
    assert serial_bytes == parallel_bytes
    record_result(
        "Runtime equivalence — ParallelRuntime(4) vs SerialRuntime on "
        f"ReVerb45K fixture: byte-identical reports "
        f"({len(parallel_bytes)} bytes)"
    )
