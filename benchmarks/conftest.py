"""Shared fixtures for the benchmark harness.

One ReVerb45K-shaped and one NYTimes2018-shaped dataset at the scale the
tables were tuned on, plus template weights learned once on the ReVerb45K
validation split (the paper trains all parameters there, Section 4.1) via
the :class:`repro.api.JOCLEngine` surface and shipped to per-dataset
engines as a JSON-safe snapshot.
Results of every table/figure are also appended to
``benchmarks/results.txt`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import JOCLEngine
from repro.core import JOCLConfig
from repro.datasets import (
    NYTimes2018Config,
    ReVerb45KConfig,
    generate_nytimes2018,
    generate_reverb45k,
)
from repro.diagnostics.pytest_support import sanitized_test


@pytest.fixture(autouse=True)
def _concurrency_sanitizer():
    """Benchmarks honor ``REPRO_SANITIZE_LOCKS`` exactly like tests/ do
    (the CI ``sanitized-stress`` job runs the serving/cluster suites
    here under the sanitizer)."""
    with sanitized_test():
        yield

#: The configuration every benchmark uses (paper constants, bounded LBP).
BENCH_CONFIG = JOCLConfig(lbp_iterations=20, learn_iterations=10)

RESULTS_PATH = Path(__file__).parent / "results.txt"


def record_result(text: str) -> None:
    """Print a table and append it to the results file."""
    print("\n" + text)
    with RESULTS_PATH.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("", encoding="utf-8")


@pytest.fixture(scope="session")
def reverb():
    return generate_reverb45k(
        ReVerb45KConfig(n_entities=120, n_facts=260, n_triples=400, seed=7)
    )


@pytest.fixture(scope="session")
def reverb_side(reverb):
    return reverb.side_information("test")


@pytest.fixture(scope="session")
def nytimes():
    return generate_nytimes2018(NYTimes2018Config())


@pytest.fixture(scope="session")
def nytimes_side(nytimes):
    return nytimes.side_information("test")


@pytest.fixture(scope="session")
def trained_weights(reverb):
    """Template weights learned on the ReVerb45K validation split.

    Exported through the engine API's JSON-safe snapshot, exactly as a
    serving deployment would ship them to inference workers.
    """
    engine = reverb.engine("validation", config=BENCH_CONFIG)
    engine.fit(reverb.validation_triples)
    return engine.export_weights()


def _engine_for(side, weights):
    return (
        JOCLEngine.builder()
        .with_side_information(side)
        .with_config(BENCH_CONFIG)
        .with_trained_weights(weights)
        .build()
    )


@pytest.fixture(scope="session")
def reverb_output(trained_weights, reverb_side):
    return _engine_for(reverb_side, trained_weights).run_joint().as_output()


@pytest.fixture(scope="session")
def nytimes_output(trained_weights, nytimes_side):
    return _engine_for(nytimes_side, trained_weights).run_joint().as_output()
