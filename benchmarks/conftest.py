"""Shared fixtures for the benchmark harness.

One ReVerb45K-shaped and one NYTimes2018-shaped dataset at the scale the
tables were tuned on, plus a JOCL model trained once on the ReVerb45K
validation split (the paper trains all parameters there, Section 4.1).
Results of every table/figure are also appended to
``benchmarks/results.txt`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import JOCL, JOCLConfig
from repro.core.learning import GoldAnnotations
from repro.datasets import (
    NYTimes2018Config,
    ReVerb45KConfig,
    generate_nytimes2018,
    generate_reverb45k,
)

#: The configuration every benchmark uses (paper constants, bounded LBP).
BENCH_CONFIG = JOCLConfig(lbp_iterations=20, learn_iterations=10)

RESULTS_PATH = Path(__file__).parent / "results.txt"


def record_result(text: str) -> None:
    """Print a table and append it to the results file."""
    print("\n" + text)
    with RESULTS_PATH.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("", encoding="utf-8")


@pytest.fixture(scope="session")
def reverb():
    return generate_reverb45k(
        ReVerb45KConfig(n_entities=120, n_facts=260, n_triples=400, seed=7)
    )


@pytest.fixture(scope="session")
def reverb_side(reverb):
    return reverb.side_information("test")


@pytest.fixture(scope="session")
def nytimes():
    return generate_nytimes2018(NYTimes2018Config())


@pytest.fixture(scope="session")
def nytimes_side(nytimes):
    return nytimes.side_information("test")


@pytest.fixture(scope="session")
def trained_jocl(reverb):
    """JOCL with weights learned on the ReVerb45K validation split."""
    model = JOCL(BENCH_CONFIG)
    validation_side = reverb.side_information("validation")
    gold = GoldAnnotations.from_triples(reverb.validation_triples)
    model.fit(validation_side, gold)
    return model


@pytest.fixture(scope="session")
def reverb_output(trained_jocl, reverb_side):
    return trained_jocl.infer(reverb_side)


@pytest.fixture(scope="session")
def nytimes_output(trained_jocl, nytimes_side):
    return trained_jocl.infer(nytimes_side)
