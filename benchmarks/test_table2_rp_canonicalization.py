"""Table 2: RP canonicalization on ReVerb45K.

AMIE, PATTY, SIST and JOCL on relation-phrase clustering.  Shape
assertions: JOCL has the best average F1, and AMIE (whose support
threshold covers few RPs, as the paper notes) trails the rest.
"""

from conftest import record_result

from repro.baselines import AmieClusteringBaseline, PattyBaseline, SistBaseline
from repro.pipeline.experiment import (
    format_table,
    run_canonicalization_systems,
    score_clustering,
)


def _table(side, gold_clusters, output):
    systems = [AmieClusteringBaseline(), PattyBaseline(), SistBaseline()]
    rows = run_canonicalization_systems(systems, side, gold_clusters, "P")
    rows.append(score_clustering("JOCL", output.rp_clusters, gold_clusters))
    record_result(
        format_table("Table 2 — RP canonicalization, ReVerb45K-shaped", rows)
    )
    return rows


def test_table2_rp_canonicalization(benchmark, reverb, reverb_side, reverb_output):
    rows = benchmark.pedantic(
        _table,
        args=(reverb_side, reverb.gold.rp_clusters, reverb_output),
        rounds=1,
        iterations=1,
    )
    by_system = {row.system: row.average_f1 for row in rows}
    jocl = by_system.pop("JOCL")
    assert jocl > max(by_system.values()), by_system
    assert by_system["AMIE"] == min(by_system.values()), by_system


def test_amie_low_coverage(reverb_side):
    """The paper's explanation for AMIE's weakness: most RPs fall below
    the support threshold, so AMIE covers very few of them."""
    covered = reverb_side.amie.covered_phrases()
    total = len(reverb_side.okb.relation_phrases)
    assert len(covered) < 0.5 * total
